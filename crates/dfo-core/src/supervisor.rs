//! Parent-side process supervision for distributed checkpoint-restart
//! (paper §3.2 layered over process relaunch).
//!
//! A [`Supervisor`] launches one OS process per rank and babysits them:
//! a rank that exits cleanly is done; a rank that dies (non-zero exit,
//! SIGKILL, SIGABRT from the fault-injection hook…) is **relaunched**
//! under the next mesh *epoch*. Inside each rank process,
//! [`crate::Cluster::run_supervised`] is the other half of the protocol:
//! survivors observe the failure as `NetClosed`, quiesce their transport,
//! learn the next epoch, and re-enter the TCP bootstrap — where they meet
//! the relaunched process, which received the same epoch via `DFO_EPOCH`.
//! Stale-epoch connections are rejected by the handshake, so sockets of
//! the dead incarnation can never rejoin.
//!
//! ## Epoch authority
//!
//! Who decides the next epoch? Without coordination each survivor bumps
//! locally by one per observed failure — correct only while failures never
//! overlap a recovery window (two deaths observed as one collective
//! failure by a late joiner, but as two by a long-lived survivor, skews
//! the counts apart and the mesh never rebuilds). The supervisor closes
//! this hole by *publishing* the epoch: [`Supervisor::with_epoch_file`]
//! names a file the supervisor rewrites atomically (temp + rename) each
//! time it bumps, bumping **once per reap pass** no matter how many ranks
//! died in it; relaunches get the published epoch via `DFO_EPOCH`, and
//! survivors (told the file via `DFO_EPOCH_FILE`) wait for the published
//! value to pass their failed attempt's instead of guessing. Every party
//! therefore converges on the same number under arbitrarily overlapping
//! failures; a wrong guess is still safe (the handshake rejects it and
//! the rank retries), it just costs another recovery attempt.
//!
//! Ranks that already *finished* are respawned alongside a relaunch: the
//! rebuilt mesh needs all ranks, and re-running a completed rank program
//! is idempotent — it recovers its final checkpoint, finds nothing left
//! to do, and rewrites identical output. Without this, a survivor that
//! finishes and exits while a peer is still relaunching would leave the
//! mesh forever one rank short.
//!
//! ## Failure model
//!
//! Fail-stop process crashes, including several per recovery window (see
//! above). Byzantine behaviour and network partitions are out of scope
//! (as in the paper, which targets small trusted clusters). Child deaths
//! are noticed via a `SIGCHLD` self-pipe on Linux (a bounded safety
//! timeout guards against missed signals) and by sleep-polling elsewhere.

use dfo_types::{DfoError, Rank, Result};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};

/// What a rank process must be launched (or relaunched) as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankSpec {
    /// The rank to run.
    pub rank: Rank,
    /// Mesh epoch the process must bootstrap at (`DFO_EPOCH`).
    pub epoch: u64,
    /// 0 for the initial launch, incremented per relaunch of this rank.
    pub attempt: u32,
}

impl RankSpec {
    /// Applies the conventional environment to a [`Command`]: `DFO_RANK`,
    /// `DFO_PEERS`, `DFO_EPOCH`, `DFO_MAX_RESTARTS` and — when the
    /// supervisor publishes its epoch — `DFO_EPOCH_FILE` (all consumed by
    /// [`dfo_types::EngineConfig::apply_env_overrides`]). Relaunches also
    /// scrub any inherited `DFO_CRASH_AT` so a deterministic kill test
    /// crashes once, not on every incarnation (chaos harnesses that *want*
    /// repeated kills re-set the variable after this call and qualify
    /// their crash points with `@<epoch>`).
    pub fn configure(
        &self,
        cmd: &mut Command,
        peers: &[String],
        max_restarts: u32,
        epoch_file: Option<&str>,
    ) {
        cmd.env("DFO_RANK", self.rank.to_string())
            .env("DFO_PEERS", peers.join(","))
            .env("DFO_EPOCH", self.epoch.to_string())
            .env("DFO_MAX_RESTARTS", max_restarts.to_string());
        match epoch_file {
            Some(path) => cmd.env("DFO_EPOCH_FILE", path),
            None => cmd.env_remove("DFO_EPOCH_FILE"),
        };
        if self.attempt > 0 {
            cmd.env_remove("DFO_CRASH_AT");
        }
    }
}

/// What a completed supervision run looked like.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuperviseReport {
    /// Total relaunches of *crashed* ranks across the run.
    pub restarts: u32,
    /// Every crash relaunch performed, as `(rank, epoch relaunched at)`.
    pub relaunches: Vec<(Rank, u64)>,
    /// Cleanly-finished ranks respawned so a recovering mesh could
    /// rebuild, as `(rank, epoch respawned at)`. These do not consume
    /// restart budget — the rank did not fail.
    pub respawns: Vec<(Rank, u64)>,
}

/// Relaunching process supervisor for a multi-process cluster; see the
/// module docs for the protocol it shares with
/// [`crate::Cluster::run_supervised`].
pub struct Supervisor {
    peers: Vec<String>,
    max_restarts: u32,
    /// Upper bound on one child-event wait; SIGCHLD usually wakes the
    /// supervisor far sooner on Linux.
    poll: Duration,
    deadline: Duration,
    epoch_file: Option<PathBuf>,
}

impl Supervisor {
    /// A supervisor for the mesh `peers` (one `host:port` per rank),
    /// allowing `max_restarts` relaunches in total before giving up.
    pub fn new(peers: Vec<String>, max_restarts: u32) -> Self {
        Self {
            peers,
            max_restarts,
            poll: Duration::from_millis(500),
            deadline: Duration::from_secs(300),
            epoch_file: None,
        }
    }

    /// Caps the whole supervised job's wall-clock time (default 300 s); on
    /// expiry every child is killed and the run fails.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Publishes the mesh epoch to `path` (atomically rewritten decimal
    /// text), making this supervisor the epoch authority — required for
    /// recovery to converge when failures overlap. Pass the same path to
    /// the ranks via [`RankSpec::configure`] (it becomes `DFO_EPOCH_FILE`).
    pub fn with_epoch_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.epoch_file = Some(path.into());
        self
    }

    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    pub fn max_restarts(&self) -> u32 {
        self.max_restarts
    }

    /// The published-epoch path as a string, in the shape
    /// [`RankSpec::configure`] wants.
    pub fn epoch_file(&self) -> Option<&str> {
        self.epoch_file.as_deref().and_then(|p| p.to_str())
    }

    /// Launches every rank via `spawn` and supervises until all exit
    /// cleanly, relaunching crashed ranks under incremented epochs.
    /// `spawn` builds and starts the process for a [`RankSpec`] — typically
    /// `Command::new(exe)` plus [`RankSpec::configure`] plus whatever
    /// job-specific environment the workers need.
    pub fn run(
        &self,
        mut spawn: impl FnMut(&RankSpec) -> std::io::Result<Child>,
    ) -> Result<SuperviseReport> {
        let p = self.peers.len();
        let mut epoch = 0u64;
        self.publish_epoch(epoch)?;
        let mut report = SuperviseReport::default();
        let mut attempts = vec![0u32; p];
        // a rank is in exactly one state: Some(child) running, or None —
        // finished cleanly (done[rank]) until a recovery respawns it
        let mut children: Vec<Option<Child>> = Vec::with_capacity(p);
        let mut done = vec![false; p];
        for rank in 0..p {
            let spec = RankSpec { rank, epoch, attempt: 0 };
            match spawn(&spec) {
                Ok(c) => children.push(Some(c)),
                Err(e) => {
                    Self::kill_all(&mut children);
                    return Err(DfoError::io(format!("launching rank {rank}"), e));
                }
            }
        }
        let deadline = Instant::now() + self.deadline;
        loop {
            // one reap pass: sweep every child, collecting all deaths
            // before deciding anything, so simultaneous deaths share one
            // epoch bump
            let mut dead: Vec<(Rank, ExitStatus)> = Vec::new();
            let mut running = false;
            for rank in 0..p {
                let Some(child) = children[rank].as_mut() else { continue };
                let status = match child.try_wait() {
                    Ok(s) => s,
                    Err(e) => {
                        Self::kill_all(&mut children);
                        return Err(DfoError::io(format!("waiting on rank {rank}"), e));
                    }
                };
                match status {
                    None => running = true,
                    Some(st) if st.success() => {
                        children[rank] = None;
                        done[rank] = true;
                    }
                    Some(st) => {
                        children[rank] = None;
                        dead.push((rank, st));
                    }
                }
            }
            if !dead.is_empty() {
                if report.restarts + dead.len() as u32 > self.max_restarts {
                    let names: Vec<String> =
                        dead.iter().map(|(r, st)| format!("rank {r} ({st})")).collect();
                    Self::kill_all(&mut children);
                    return Err(DfoError::RestartsExhausted {
                        attempts: report.restarts,
                        last: Box::new(DfoError::NetClosed(format!(
                            "{} died with no restart budget left",
                            names.join(", ")
                        ))),
                    });
                }
                // one bump per pass, however many ranks died in it; the
                // published file is what survivors re-bootstrap against
                epoch += 1;
                self.publish_epoch(epoch)?;
                for (rank, st) in &dead {
                    report.restarts += 1;
                    attempts[*rank] += 1;
                    report.relaunches.push((*rank, epoch));
                    eprintln!(
                        "[dfo] supervisor: rank {rank} died ({st}); relaunching at epoch \
                         {epoch} (restart {}/{})",
                        report.restarts, self.max_restarts
                    );
                    let spec = RankSpec { rank: *rank, epoch, attempt: attempts[*rank] };
                    match spawn(&spec) {
                        Ok(c) => children[*rank] = Some(c),
                        Err(e) => {
                            Self::kill_all(&mut children);
                            return Err(DfoError::io(format!("relaunching rank {rank}"), e));
                        }
                    }
                }
                // liveness: the rebuilt mesh needs every rank, including
                // those that already finished and exited — re-running a
                // completed rank is idempotent (module docs)
                for rank in 0..p {
                    if !done[rank] {
                        continue;
                    }
                    done[rank] = false;
                    attempts[rank] += 1;
                    report.respawns.push((rank, epoch));
                    eprintln!(
                        "[dfo] supervisor: respawning finished rank {rank} at epoch {epoch} \
                         so the mesh can rebuild"
                    );
                    let spec = RankSpec { rank, epoch, attempt: attempts[rank] };
                    match spawn(&spec) {
                        Ok(c) => children[rank] = Some(c),
                        Err(e) => {
                            Self::kill_all(&mut children);
                            return Err(DfoError::io(format!("respawning rank {rank}"), e));
                        }
                    }
                }
                running = true;
            }
            if !running {
                return Ok(report);
            }
            if Instant::now() >= deadline {
                Self::kill_all(&mut children);
                return Err(DfoError::NetClosed(format!(
                    "supervision deadline ({:?}) passed with ranks still running",
                    self.deadline
                )));
            }
            reap_signal::wait_for_child_event(self.poll);
        }
    }

    /// Atomically rewrites the published-epoch file (when configured):
    /// decimal text via temp + rename, so ranks never read a torn value.
    fn publish_epoch(&self, epoch: u64) -> Result<()> {
        let Some(path) = &self.epoch_file else { return Ok(()) };
        let tmp = path.with_extension("epoch-tmp");
        std::fs::write(&tmp, format!("{epoch}\n"))
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| DfoError::io(format!("publishing epoch {epoch} to {path:?}"), e))
    }

    fn kill_all(children: &mut [Option<Child>]) {
        for c in children.iter_mut().filter_map(Option::take) {
            let mut c = c;
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// SIGCHLD-driven child-event waiting (Linux): a process-global self-pipe
/// whose write end is fed one byte per `SIGCHLD` by an async-signal-safe
/// handler, so the supervisor sleeps in `poll(2)` and wakes the moment a
/// child changes state instead of burning a fixed-interval `try_wait`
/// loop. The raw syscall declarations keep the crate dependency-free.
///
/// The pipe is shared by every supervisor in the process (signal
/// dispositions are process-global), so a concurrent instance may drain a
/// byte meant for another; the caller's bounded timeout makes that a
/// latency blip, never a hang — and callers re-`try_wait` every child on
/// every wakeup regardless.
#[cfg(target_os = "linux")]
mod reap_signal {
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::Once;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        fn signal(signum: i32, handler: usize) -> usize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }

    const SIGCHLD: i32 = 17;
    const O_NONBLOCK: i32 = 0o4000;
    const O_CLOEXEC: i32 = 0o2000000;
    const POLLIN: i16 = 1;
    const SIG_ERR: usize = usize::MAX;

    static WRITE_FD: AtomicI32 = AtomicI32::new(-1);
    static READ_FD: AtomicI32 = AtomicI32::new(-1);
    static INIT: Once = Once::new();

    extern "C" fn on_sigchld(_sig: i32) {
        // write(2) is async-signal-safe; the pipe is non-blocking so a
        // full pipe (wakeup already pending many times over) is dropped
        let fd = WRITE_FD.load(Ordering::Relaxed);
        if fd >= 0 {
            unsafe { write(fd, b"c".as_ptr(), 1) };
        }
    }

    fn install() -> bool {
        INIT.call_once(|| {
            let mut fds = [-1i32; 2];
            if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } != 0 {
                return;
            }
            WRITE_FD.store(fds[1], Ordering::Relaxed);
            if unsafe { signal(SIGCHLD, on_sigchld as *const () as usize) } == SIG_ERR {
                WRITE_FD.store(-1, Ordering::Relaxed);
                return;
            }
            READ_FD.store(fds[0], Ordering::Relaxed);
        });
        READ_FD.load(Ordering::Relaxed) >= 0
    }

    /// Blocks until a child *may* need reaping, or `timeout` elapses.
    /// Spurious wakeups are fine; the pipe is drained before returning so
    /// a signal arriving after the drain leaves a byte for the next call
    /// (no lost-wakeup window as long as callers `try_wait` after this
    /// returns, which they do).
    pub fn wait_for_child_event(timeout: Duration) {
        if !install() {
            std::thread::sleep(timeout.min(Duration::from_millis(25)));
            return;
        }
        let fd = READ_FD.load(Ordering::Relaxed);
        let mut pfd = PollFd { fd, events: POLLIN, revents: 0 };
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = unsafe { poll(&mut pfd, 1, ms) };
        if n > 0 {
            let mut buf = [0u8; 64];
            while unsafe { read(fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }
}

/// Portable fallback: fixed-interval sleep between reap passes.
#[cfg(not(target_os = "linux"))]
mod reap_signal {
    use std::time::Duration;

    pub fn wait_for_child_event(timeout: Duration) {
        std::thread::sleep(timeout.min(Duration::from_millis(25)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    #[test]
    fn all_ranks_exit_clean_no_restarts() {
        let sup = Supervisor::new(vec!["a:1".into(), "b:2".into()], 3)
            .with_deadline(Duration::from_secs(30));
        let report = sup.run(|_spec| sh("exit 0").spawn()).unwrap();
        assert_eq!(report, SuperviseReport::default());
    }

    #[test]
    fn crashed_rank_is_relaunched_under_next_epoch() {
        let sup = Supervisor::new(vec!["a:1".into(), "b:2".into()], 3)
            .with_deadline(Duration::from_secs(30));
        // rank 1's first attempt dies; its relaunch succeeds. Rank 0 runs
        // long enough to still be alive at the relaunch, so no respawn.
        let report = sup
            .run(|spec| {
                if spec.rank == 1 && spec.attempt == 0 {
                    sh("exit 7").spawn()
                } else if spec.rank == 0 {
                    sh("sleep 0.4; exit 0").spawn()
                } else {
                    sh("exit 0").spawn()
                }
            })
            .unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.relaunches, vec![(1, 1)]);
        assert_eq!(report.respawns, vec![]);
    }

    #[test]
    fn restart_budget_exhaustion_is_fatal() {
        let sup = Supervisor::new(vec!["a:1".into()], 2).with_deadline(Duration::from_secs(30));
        let err = sup.run(|_spec| sh("exit 3").spawn()).unwrap_err();
        match err {
            DfoError::RestartsExhausted { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("want RestartsExhausted, got {other:?}"),
        }
    }

    #[test]
    fn finished_rank_is_respawned_when_a_peer_dies() {
        // rank 0 finishes immediately; rank 1 dies ~200 ms later. The
        // recovery must bring rank 0 back at the same published epoch or
        // a real mesh could never rebuild.
        let sup = Supervisor::new(vec!["a:1".into(), "b:2".into()], 3)
            .with_deadline(Duration::from_secs(30));
        let report = sup
            .run(|spec| {
                if spec.rank == 1 && spec.attempt == 0 {
                    sh("sleep 0.2; exit 7").spawn()
                } else {
                    sh("exit 0").spawn()
                }
            })
            .unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.relaunches, vec![(1, 1)]);
        assert_eq!(report.respawns, vec![(0, 1)]);
    }

    #[test]
    fn epoch_file_tracks_the_published_epoch() {
        let dir = std::env::temp_dir().join(format!("dfo-sup-epoch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("EPOCH");
        let sup = Supervisor::new(vec!["a:1".into()], 3)
            .with_deadline(Duration::from_secs(30))
            .with_epoch_file(&path);
        // launch publishes 0 before any child runs
        let mut seen0 = None;
        let report = sup
            .run(|spec| {
                if spec.attempt == 0 {
                    seen0 = std::fs::read_to_string(&path).ok();
                    sh("exit 7").spawn()
                } else {
                    sh("exit 0").spawn()
                }
            })
            .unwrap();
        assert_eq!(seen0.as_deref().map(str::trim), Some("0"));
        assert_eq!(report.restarts, 1);
        let after = std::fs::read_to_string(&path).unwrap();
        assert_eq!(after.trim(), "1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rank_spec_configures_the_conventional_env() {
        let spec = RankSpec { rank: 1, epoch: 4, attempt: 2 };
        let mut cmd = Command::new("true");
        spec.configure(&mut cmd, &["h:1".into(), "h:2".into()], 9, Some("/tmp/EPOCH"));
        let envs: Vec<(String, Option<String>)> = cmd
            .get_envs()
            .map(|(k, v)| {
                (k.to_string_lossy().into_owned(), v.map(|v| v.to_string_lossy().into_owned()))
            })
            .collect();
        assert!(envs.contains(&("DFO_RANK".into(), Some("1".into()))));
        assert!(envs.contains(&("DFO_PEERS".into(), Some("h:1,h:2".into()))));
        assert!(envs.contains(&("DFO_EPOCH".into(), Some("4".into()))));
        assert!(envs.contains(&("DFO_MAX_RESTARTS".into(), Some("9".into()))));
        assert!(envs.contains(&("DFO_EPOCH_FILE".into(), Some("/tmp/EPOCH".into()))));
        // relaunches scrub the crash hook
        assert!(envs.contains(&("DFO_CRASH_AT".into(), None)));
    }
}
