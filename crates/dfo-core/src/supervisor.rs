//! Parent-side process supervision for distributed checkpoint-restart
//! (paper §3.2 layered over process relaunch).
//!
//! A [`Supervisor`] launches one OS process per rank and babysits them:
//! a rank that exits cleanly is done; a rank that dies (non-zero exit,
//! SIGKILL, SIGABRT from the fault-injection hook…) is **relaunched**
//! under the next mesh *epoch*. Inside each rank process,
//! [`crate::Cluster::run_supervised`] is the other half of the protocol:
//! survivors observe the failure as `NetClosed`, quiesce their transport,
//! bump their epoch by one, and re-enter the TCP bootstrap — where they
//! meet the relaunched process, which received the same epoch via
//! `DFO_EPOCH`. Stale-epoch connections are rejected by the handshake, so
//! sockets of the dead incarnation can never rejoin.
//!
//! ## Failure model
//!
//! Fail-stop process crashes, at most one outstanding failure per recovery
//! window: epochs stay in sync because every survivor observes each crash
//! exactly once (its collectives and streams fail) while the supervisor
//! relaunches exactly once per crash. Overlapping failures — a second rank
//! dying while a recovery is still bootstrapping — exhaust the restart
//! budget or time out the bootstrap, and the job fails loudly instead of
//! wedging. Byzantine behaviour and network partitions are out of scope
//! (as in the paper, which targets small trusted clusters).

use dfo_types::{DfoError, Rank, Result};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// What a rank process must be launched (or relaunched) as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankSpec {
    /// The rank to run.
    pub rank: Rank,
    /// Mesh epoch the process must bootstrap at (`DFO_EPOCH`).
    pub epoch: u64,
    /// 0 for the initial launch, incremented per relaunch of this rank.
    pub attempt: u32,
}

impl RankSpec {
    /// Applies the conventional environment to a [`Command`]: `DFO_RANK`,
    /// `DFO_PEERS`, `DFO_EPOCH` and `DFO_MAX_RESTARTS` (all consumed by
    /// [`dfo_types::EngineConfig::apply_env_overrides`]). Relaunches also
    /// scrub any inherited `DFO_CRASH_AT` so a deterministic kill test
    /// crashes once, not on every incarnation.
    pub fn configure(&self, cmd: &mut Command, peers: &[String], max_restarts: u32) {
        cmd.env("DFO_RANK", self.rank.to_string())
            .env("DFO_PEERS", peers.join(","))
            .env("DFO_EPOCH", self.epoch.to_string())
            .env("DFO_MAX_RESTARTS", max_restarts.to_string());
        if self.attempt > 0 {
            cmd.env_remove("DFO_CRASH_AT");
        }
    }
}

/// What a completed supervision run looked like.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuperviseReport {
    /// Total relaunches across all ranks.
    pub restarts: u32,
    /// Every relaunch performed, as `(rank, epoch it was relaunched at)`.
    pub relaunches: Vec<(Rank, u64)>,
}

/// Relaunching process supervisor for a multi-process cluster; see the
/// module docs for the protocol it shares with
/// [`crate::Cluster::run_supervised`].
pub struct Supervisor {
    peers: Vec<String>,
    max_restarts: u32,
    poll: Duration,
    deadline: Duration,
}

impl Supervisor {
    /// A supervisor for the mesh `peers` (one `host:port` per rank),
    /// allowing `max_restarts` relaunches in total before giving up.
    pub fn new(peers: Vec<String>, max_restarts: u32) -> Self {
        Self {
            peers,
            max_restarts,
            poll: Duration::from_millis(25),
            deadline: Duration::from_secs(300),
        }
    }

    /// Caps the whole supervised job's wall-clock time (default 300 s); on
    /// expiry every child is killed and the run fails.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    pub fn max_restarts(&self) -> u32 {
        self.max_restarts
    }

    /// Launches every rank via `spawn` and supervises until all exit
    /// cleanly, relaunching crashed ranks under incremented epochs.
    /// `spawn` builds and starts the process for a [`RankSpec`] — typically
    /// `Command::new(exe)` plus [`RankSpec::configure`] plus whatever
    /// job-specific environment the workers need.
    pub fn run(
        &self,
        mut spawn: impl FnMut(&RankSpec) -> std::io::Result<Child>,
    ) -> Result<SuperviseReport> {
        let p = self.peers.len();
        let mut epoch = 0u64;
        let mut report = SuperviseReport::default();
        let mut attempts = vec![0u32; p];
        let mut children: Vec<Option<Child>> = Vec::with_capacity(p);
        for rank in 0..p {
            let spec = RankSpec { rank, epoch, attempt: 0 };
            match spawn(&spec) {
                Ok(c) => children.push(Some(c)),
                Err(e) => {
                    Self::kill_all(&mut children);
                    return Err(DfoError::io(format!("launching rank {rank}"), e));
                }
            }
        }
        let deadline = Instant::now() + self.deadline;
        loop {
            let mut running = false;
            for rank in 0..p {
                let Some(child) = children[rank].as_mut() else { continue };
                let status = match child.try_wait() {
                    Ok(s) => s,
                    Err(e) => {
                        Self::kill_all(&mut children);
                        return Err(DfoError::io(format!("waiting on rank {rank}"), e));
                    }
                };
                match status {
                    None => running = true,
                    Some(st) if st.success() => {
                        children[rank] = None; // rank finished its program
                    }
                    Some(st) => {
                        // rank died: relaunch it under the next epoch (the
                        // survivors bump to the same epoch on their own
                        // when their collectives fail)
                        if report.restarts >= self.max_restarts {
                            Self::kill_all(&mut children);
                            return Err(DfoError::RestartsExhausted {
                                attempts: report.restarts,
                                last: Box::new(DfoError::NetClosed(format!(
                                    "rank {rank} died ({st}) with no restart budget left"
                                ))),
                            });
                        }
                        report.restarts += 1;
                        epoch += 1;
                        attempts[rank] += 1;
                        report.relaunches.push((rank, epoch));
                        eprintln!(
                            "[dfo] supervisor: rank {rank} died ({st}); relaunching at epoch \
                             {epoch} (restart {}/{})",
                            report.restarts, self.max_restarts
                        );
                        let spec = RankSpec { rank, epoch, attempt: attempts[rank] };
                        match spawn(&spec) {
                            Ok(c) => children[rank] = Some(c),
                            Err(e) => {
                                Self::kill_all(&mut children);
                                return Err(DfoError::io(format!("relaunching rank {rank}"), e));
                            }
                        }
                        running = true;
                    }
                }
            }
            if !running {
                return Ok(report);
            }
            if Instant::now() >= deadline {
                Self::kill_all(&mut children);
                return Err(DfoError::NetClosed(format!(
                    "supervision deadline ({:?}) passed with ranks still running",
                    self.deadline
                )));
            }
            std::thread::sleep(self.poll);
        }
    }

    fn kill_all(children: &mut [Option<Child>]) {
        for c in children.iter_mut().filter_map(Option::take) {
            let mut c = c;
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    #[test]
    fn all_ranks_exit_clean_no_restarts() {
        let sup = Supervisor::new(vec!["a:1".into(), "b:2".into()], 3)
            .with_deadline(Duration::from_secs(30));
        let report = sup.run(|_spec| sh("exit 0").spawn()).unwrap();
        assert_eq!(report, SuperviseReport::default());
    }

    #[test]
    fn crashed_rank_is_relaunched_under_next_epoch() {
        let sup = Supervisor::new(vec!["a:1".into(), "b:2".into()], 3)
            .with_deadline(Duration::from_secs(30));
        // rank 1's first attempt dies; its relaunch succeeds
        let report = sup
            .run(|spec| {
                if spec.rank == 1 && spec.attempt == 0 {
                    sh("exit 7").spawn()
                } else {
                    sh("exit 0").spawn()
                }
            })
            .unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.relaunches, vec![(1, 1)]);
    }

    #[test]
    fn restart_budget_exhaustion_is_fatal() {
        let sup = Supervisor::new(vec!["a:1".into()], 2).with_deadline(Duration::from_secs(30));
        let err = sup.run(|_spec| sh("exit 3").spawn()).unwrap_err();
        match err {
            DfoError::RestartsExhausted { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("want RestartsExhausted, got {other:?}"),
        }
    }

    #[test]
    fn rank_spec_configures_the_conventional_env() {
        let spec = RankSpec { rank: 1, epoch: 4, attempt: 2 };
        let mut cmd = Command::new("true");
        spec.configure(&mut cmd, &["h:1".into(), "h:2".into()], 9);
        let envs: Vec<(String, Option<String>)> = cmd
            .get_envs()
            .map(|(k, v)| {
                (k.to_string_lossy().into_owned(), v.map(|v| v.to_string_lossy().into_owned()))
            })
            .collect();
        assert!(envs.contains(&("DFO_RANK".into(), Some("1".into()))));
        assert!(envs.contains(&("DFO_PEERS".into(), Some("h:1,h:2".into()))));
        assert!(envs.contains(&("DFO_EPOCH".into(), Some("4".into()))));
        assert!(envs.contains(&("DFO_MAX_RESTARTS".into(), Some("9".into()))));
        // relaunches scrub the crash hook
        assert!(envs.contains(&("DFO_CRASH_AT".into(), None)));
    }
}
