//! `ProcessEdges`: the four-phase push pipeline (paper §3.1, §4).
//!
//! ```text
//! 1 generating   each batch runs `signal` over its active vertices and
//!                spills (src, msg) records to disk              [T workers]
//! 2 passing      the sender streams the node's messages to each peer in
//!                round-robin order, filtered against the §4.3 lists
//!                                                               [1 thread]
//! 3 dispatching  incoming streams are routed to per-batch message files
//!                via the dispatching graph (push), staged and pulled, or
//!                stored raw (none) — chosen adaptively (§4.2); the node's
//!                own messages are dispatched concurrently      [2 threads]
//! 4 processing   each batch replays its message segments in source order,
//!                looks edges up through CSR or DCSR (§4.1 cost model) and
//!                runs `slot`; no atomics needed — one thread per batch
//!                                                               [T workers]
//! ```
//!
//! Phases 2 and 3 overlap fully (a node sends to one peer while receiving
//! from another and dispatching its own messages), which is where the
//! paper's disk/network overlap comes from. Generation completes before
//! passing starts: the filter skip rule needs `|M_i|`, and the loss of that
//! overlap is one batch of latency, not throughput.

use crate::accum::Accum;
use crate::array::{ArrayEntry, BatchCtx, VertexArray};
use crate::messages::{parse_record, record_bytes, FrameBuilder, RecordIter, RecordReader};
use crate::node::NodeCtx;
use bytes::Bytes;
use dfo_part::csr::{choose_repr, IndexedChunk, MergeCursor};
use dfo_part::filter::{should_filter, FilterCursor};
use dfo_part::plan::ChunkInfo;
use dfo_part::preprocess::paths;
use dfo_storage::{CachedValue, ChunkKey, PrefetchJob, Prefetcher};
use dfo_types::{DfoError, DispatchKind, PhaseStats, Pod, Rank, ReprKind, Result, VertexId};
use parking_lot::Mutex;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Target network frame size; 256 KB keeps header overhead ≪ 1 %.
const FRAME_BYTES: usize = 256 << 10;
/// Buffer for per-batch dispatch writers (many are open at once).
const DISPATCH_BUF: usize = 32 << 10;

/// Per-call counters for the phases that run concurrently (pass/dispatch);
/// the sequential phases (generate/process) are measured as disk-stat
/// deltas around their barriers.
#[derive(Default)]
struct CallStats {
    pass_disk_read: AtomicU64,
    dispatch_disk_read: AtomicU64,
    dispatch_disk_write: AtomicU64,
    messages_sent: AtomicU64,
}

/// How an incoming stream is handled (§4.2 + a drain case for streams that
/// carry nothing we need).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Strategy {
    Push,
    Pull,
    NoDispatch,
    Drain,
}

impl NodeCtx {
    /// The paper's `ProcessEdges` (§3): active vertices `signal` messages
    /// along outgoing edges; `slot` consumes them at destination vertices.
    ///
    /// * `signal_arrays` / `slot_arrays` name the vertex arrays the UDFs
    ///   may access (signal sees the *source* vertex, slot the
    ///   *destination* — never the other way round).
    /// * `active` restricts signalling to active vertices.
    /// * Returns the cluster-wide sum of `slot` return values.
    ///
    /// Within one call, `slot` invocations for a given destination batch
    /// happen on one thread, with messages from source partitions applied
    /// in a fixed order — UDFs need no atomics (§4.5 "data contention").
    pub fn process_edges<A, M, E>(
        &mut self,
        signal_arrays: &[&str],
        slot_arrays: &[&str],
        active: Option<&VertexArray<bool>>,
        signal: impl Fn(VertexId, &mut BatchCtx) -> Option<M> + Sync,
        slot: impl Fn(M, VertexId, VertexId, &E, &mut BatchCtx) -> A + Sync,
    ) -> Result<A>
    where
        A: Accum,
        M: Pod,
        E: Pod + PartialEq,
    {
        assert_eq!(
            self.plan.edge_data_bytes as usize,
            std::mem::size_of::<E>(),
            "edge data type {} does not match the preprocessed graph",
            std::any::type_name::<E>()
        );
        self.check_cancelled()?;
        let _call_span = self.obs_span("process_edges", "call");
        if let Some(o) = &self.obs {
            o.edges_calls.inc();
        }
        let seq = self.call_seq;
        self.call_seq += 1;
        let rank = self.rank;
        let p_nodes = self.cfg.nodes;
        let b_count = self.plan.n_batches(rank);

        // previous call's message spill is garbage now
        let _ = std::fs::remove_dir_all(self.scratch.root().join("msgs"));

        let signal_entries = self.entries(signal_arrays);
        let slot_entries = self.entries(slot_arrays);
        let active_entry = active.map(|a| self.entries(&[a.name()]).remove(0));
        let mut epoch_set: Vec<Arc<ArrayEntry>> = Vec::new();
        for e in signal_entries.iter().chain(&slot_entries).chain(active_entry.iter()) {
            if !epoch_set.iter().any(|x| x.name == e.name) {
                epoch_set.push(e.clone());
            }
        }
        self.begin_epochs(&epoch_set);

        let mut stats = PhaseStats::default();
        let disk_stats = self.disk.stats();
        let (r0, w0) = (disk_stats.read_bytes.get(), disk_stats.write_bytes.get());
        let (lr0, lw0) =
            (disk_stats.logical_read_bytes.get(), disk_stats.logical_write_bytes.get());
        // hit/miss are counted at this context's lookup sites (see
        // `load_chunk`); only eviction pressure — a property of the shared
        // cache, not of one caller — is still read as a counter delta
        let cache0 = self.chunk_cache.as_ref().map(|c| c.stats());
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);

        // ---------------- phase 1: generating --------------------------------
        let t_gen = std::time::Instant::now();
        let gen_span = self.obs_span("phase1_generate", "phase");
        let gen_counts: Vec<AtomicU64> = (0..b_count).map(|_| AtomicU64::new(0)).collect();
        {
            let next = AtomicUsize::new(0);
            let err: Mutex<Option<DfoError>> = Mutex::new(None);
            std::thread::scope(|s| {
                for _ in 0..self.cfg.threads_per_node {
                    s.spawn(|| loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= b_count {
                            break;
                        }
                        match self.generate_batch(
                            b,
                            &signal_entries,
                            signal_arrays,
                            active_entry.as_deref(),
                            &signal,
                        ) {
                            Ok(n) => gen_counts[b].store(n, Ordering::Relaxed),
                            Err(e) => {
                                *err.lock() = Some(e);
                                break;
                            }
                        }
                    });
                }
            });
            let pending = err.lock().take();
            if let Some(e) = pending {
                return Err(e);
            }
        }
        drop(gen_span);
        let gen_elapsed = t_gen.elapsed();
        let m_total: u64 = gen_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        stats.messages_generated = m_total;
        stats.generate_disk_read = disk_stats.read_bytes.get() - r0;
        stats.generate_disk_write = disk_stats.write_bytes.get() - w0;
        stats.generate_nanos = gen_elapsed.as_nanos() as u64;
        if let Some(o) = &self.obs {
            o.phase_secs[0].observe(gen_elapsed.as_secs_f64());
        }

        // ---------------- phases 2+3: passing & dispatching ------------------
        let call = CallStats::default();
        let msg_counts: Vec<Vec<AtomicU64>> =
            (0..b_count).map(|_| (0..p_nodes).map(|_| AtomicU64::new(0)).collect()).collect();
        let none_mode: Vec<AtomicBool> = (0..p_nodes).map(|_| AtomicBool::new(false)).collect();
        let none_counts: Vec<AtomicU64> = (0..p_nodes).map(|_| AtomicU64::new(0)).collect();
        let net_sent0 = self.net.stats().sent_bytes.get();
        let net_recv0 = self.net.stats().recv_bytes.get();
        let t_dispatch = std::time::Instant::now();
        let dispatch_span = self.obs_span("phase3_dispatch", "phase");
        // phase-2 wall time, measured on the sender thread (the phases
        // overlap, so the main thread's window can't see it)
        let pass_nanos = AtomicU64::new(0);

        {
            let err: Mutex<Option<DfoError>> = Mutex::new(None);
            let record_err = |e: DfoError| {
                *err.lock() = Some(e);
            };
            std::thread::scope(|s| {
                // sender: round-robin over peers (§4.4)
                s.spawn(|| {
                    let t_pass = std::time::Instant::now();
                    let _pass_span = self.obs_span("phase2_pass", "phase");
                    for j in self.cfg.send_order(rank) {
                        if let Err(e) = self.send_to::<M>(j, seq, m_total, &gen_counts, &call) {
                            record_err(e);
                            break;
                        }
                    }
                    let el = t_pass.elapsed();
                    pass_nanos.store(el.as_nanos() as u64, Ordering::Relaxed);
                    if let Some(o) = &self.obs {
                        o.phase_secs[1].observe(el.as_secs_f64());
                    }
                });
                // self-dispatch: the node's own messages never touch the wire
                s.spawn(|| {
                    if let Err(e) = self.dispatch_self::<M>(
                        m_total,
                        &gen_counts,
                        &msg_counts,
                        &none_mode,
                        &none_counts,
                        &call,
                    ) {
                        record_err(e);
                    }
                });
                // receiver: peers in mirrored order (§4.5)
                s.spawn(|| {
                    for p in self.cfg.recv_order(rank) {
                        if let Err(e) = self.recv_dispatch::<M>(
                            p,
                            seq,
                            &msg_counts,
                            &none_mode,
                            &none_counts,
                            &call,
                        ) {
                            record_err(e);
                            return;
                        }
                    }
                });
            });
            let pending = err.lock().take();
            if let Some(e) = pending {
                return Err(e);
            }
        }
        drop(dispatch_span);
        let dispatch_elapsed = t_dispatch.elapsed();
        stats.pass_net_sent = self.net.stats().sent_bytes.get() - net_sent0;
        stats.dispatch_net_recv = self.net.stats().recv_bytes.get() - net_recv0;
        stats.pass_disk_read = call.pass_disk_read.load(Ordering::Relaxed);
        stats.dispatch_disk_read = call.dispatch_disk_read.load(Ordering::Relaxed);
        stats.dispatch_disk_write = call.dispatch_disk_write.load(Ordering::Relaxed);
        stats.messages_sent = call.messages_sent.load(Ordering::Relaxed);
        stats.pass_nanos = pass_nanos.load(Ordering::Relaxed);
        stats.dispatch_nanos = dispatch_elapsed.as_nanos() as u64;
        if let Some(o) = &self.obs {
            o.phase_secs[2].observe(dispatch_elapsed.as_secs_f64());
        }

        // ---------------- phase 4: processing --------------------------------
        let t_proc = std::time::Instant::now();
        let proc_span = self.obs_span("phase4_process", "phase");
        let (r1, w1) = (disk_stats.read_bytes.get(), disk_stats.write_bytes.get());
        // read-ahead: background threads decode the next batches' chunks
        // into the cache while `slot` runs over the current one
        let prefetcher = self.spawn_prefetcher::<E>(b_count, &msg_counts, &none_mode, &none_counts);
        let result: Mutex<A> = Mutex::new(A::zero());
        {
            let next = AtomicUsize::new(0);
            let err: Mutex<Option<DfoError>> = Mutex::new(None);
            std::thread::scope(|s| {
                for _ in 0..self.cfg.threads_per_node {
                    s.spawn(|| {
                        let mut local = A::zero();
                        loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= b_count {
                                break;
                            }
                            if let Some(pf) = &prefetcher {
                                pf.notify_claimed(b);
                            }
                            match self.process_batch::<A, M, E>(
                                b,
                                &slot_entries,
                                &msg_counts,
                                &none_mode,
                                &none_counts,
                                &gen_counts,
                                &slot,
                            ) {
                                Ok(a) => local = local.merge(a),
                                Err(e) => {
                                    *err.lock() = Some(e);
                                    break;
                                }
                            }
                        }
                        let mut r = result.lock();
                        let cur = std::mem::replace(&mut *r, A::zero());
                        *r = cur.merge(local);
                    });
                }
            });
            let pending = err.lock().take();
            if let Some(e) = pending {
                return Err(e);
            }
        }
        // join the prefetch threads before sampling counters so their reads
        // land deterministically in the processing window
        drop(prefetcher);
        drop(proc_span);
        let proc_elapsed = t_proc.elapsed();
        stats.process_nanos = proc_elapsed.as_nanos() as u64;
        if let Some(o) = &self.obs {
            o.phase_secs[3].observe(proc_elapsed.as_secs_f64());
        }
        stats.process_disk_read = disk_stats.read_bytes.get() - r1;
        stats.process_disk_write = disk_stats.write_bytes.get() - w1;
        // whole-call logical (pre-compression) totals; the per-phase fields
        // above stay physical
        stats.logical_disk_read = disk_stats.logical_read_bytes.get() - lr0;
        stats.logical_disk_write = disk_stats.logical_write_bytes.get() - lw0;
        stats.chunk_cache_hits = self.cache_hits.load(Ordering::Relaxed);
        stats.chunk_cache_misses = self.cache_misses.load(Ordering::Relaxed);
        if let (Some(cache), Some(s0)) = (&self.chunk_cache, cache0) {
            stats.chunk_cache_evicted_bytes = cache.stats().delta_since(&s0).evicted_bytes;
        }

        self.commit_epochs(&epoch_set)?;
        self.job_stats.merge(&stats);
        self.last_stats = stats;
        let local = std::mem::replace(&mut *result.lock(), A::zero());
        Ok(local.allreduce(&self.net))
    }

    /// Phase 1 for one batch: run `signal` over active vertices, spill
    /// records to `msgs/gen_b{b}.bin`, write back dirty signal arrays.
    fn generate_batch<M: Pod>(
        &self,
        b: usize,
        signal_entries: &[Arc<ArrayEntry>],
        signal_names: &[&str],
        active_entry: Option<&ArrayEntry>,
        signal: &(impl Fn(VertexId, &mut BatchCtx) -> Option<M> + Sync),
    ) -> Result<u64> {
        let range = self.plan.batches[self.rank][b];
        if range.is_empty() {
            return Ok(0);
        }
        let partition_start = self.plan.partitions[self.rank].start;
        let active_bytes = match active_entry {
            Some(e) if self.cfg.batching_enabled => {
                let bytes = e.read_block(b)?;
                if !bytes.iter().any(|&x| x != 0) {
                    return Ok(0);
                }
                Some(bytes)
            }
            _ => None,
        };
        let mut refs: Vec<&ArrayEntry> = signal_entries.iter().map(|e| e.as_ref()).collect();
        let paged_active = match active_entry {
            Some(e) if !self.cfg.batching_enabled => {
                if !signal_names.contains(&e.name.as_str()) {
                    refs.push(e);
                }
                Some(VertexArray::<bool>::new(&e.name))
            }
            _ => None,
        };
        let preloaded = match (&active_bytes, active_entry) {
            (Some(bytes), Some(e)) if signal_names.contains(&e.name.as_str()) => {
                Some((e.name.as_str(), bytes.clone()))
            }
            _ => None,
        };
        let mut ctx = BatchCtx::load(&refs, range, b, partition_start, preloaded)?;
        let mut writer = None;
        let mut count = 0u64;
        let mut rec_buf: Vec<u8> = Vec::with_capacity(record_bytes::<M>());
        for v in range.iter() {
            let is_active = match (&active_bytes, &paged_active) {
                (Some(bytes), _) => bytes[(v - range.start) as usize] != 0,
                (None, Some(h)) => ctx.get(h, v),
                (None, None) => true,
            };
            if !is_active {
                continue;
            }
            if let Some(msg) = signal(v, &mut ctx) {
                let w = match &mut writer {
                    Some(w) => w,
                    None => {
                        writer = Some(self.scratch.create(&gen_path(b))?);
                        writer.as_mut().unwrap()
                    }
                };
                rec_buf.clear();
                // source stored local to the *partition*: receivers resolve
                // it against the sender's partition range
                crate::messages::push_record(&mut rec_buf, (v - partition_start) as u32, &msg);
                w.write_all(&rec_buf).map_err(|e| DfoError::io("writing generated message", e))?;
                count += 1;
            }
        }
        if let Some(w) = writer {
            w.finish()?;
        }
        ctx.write_back(b)?;
        Ok(count)
    }

    /// Phase 2 to one peer: stream the node's generated messages, filtered
    /// against `L_{rank,j}` unless the §4.3 skip rule fires.
    fn send_to<M: Pod>(
        &self,
        j: Rank,
        seq: u64,
        m_total: u64,
        gen_counts: &[AtomicU64],
        call: &CallStats,
    ) -> Result<()> {
        let l_len = self.plan.node_meta[self.rank].filter_lens[j];
        let do_filter =
            self.cfg.filtering_enabled && should_filter(l_len, m_total, self.cfg.filter_skip_ratio);
        let list = if do_filter {
            dfo_part::filter::read_filter_list(&self.disk, &paths::filter(j))?
        } else {
            Vec::new()
        };
        let mut cursor = FilterCursor::new(&list);

        // header frame: an upper bound on the records to follow, so the
        // receiver can pick its dispatch strategy before data arrives
        let bound = if do_filter { l_len.min(m_total) } else { m_total };
        self.net.send(j, seq, Bytes::copy_from_slice(&bound.to_le_bytes()), false)?;

        let rec = record_bytes::<M>();
        let mut fb = FrameBuilder::new(FRAME_BYTES, rec);
        let mut sent = 0u64;
        // stats accumulate in locals and flush once per stream — a per-record
        // fetch_add on a shared cache line costs more than the record parse
        let mut read_bytes = 0u64;
        for (b, c) in gen_counts.iter().enumerate() {
            if c.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let mut r = RecordReader::new(self.scratch.open(&gen_path(b))?);
            while let Some((src, msg)) = RecordIter::<M>::next_record(&mut r)? {
                read_bytes += rec as u64;
                if !do_filter || cursor.contains(src) {
                    sent += 1;
                    if let Some(frame) = fb.push(src, &msg) {
                        self.net.send(j, seq, frame, false)?;
                    }
                }
            }
        }
        if let Some(tail) = fb.finish() {
            self.net.send(j, seq, tail, false)?;
        }
        self.net.finish_stream(j, seq)?;
        call.pass_disk_read.fetch_add(read_bytes, Ordering::Relaxed);
        call.messages_sent.fetch_add(sent, Ordering::Relaxed);
        Ok(())
    }

    /// Phase 3 for the node's own messages: they are already on disk (the
    /// gen files), so dispatching reads them locally.
    fn dispatch_self<M: Pod>(
        &self,
        m_total: u64,
        gen_counts: &[AtomicU64],
        msg_counts: &[Vec<AtomicU64>],
        none_mode: &[AtomicBool],
        none_counts: &[AtomicU64],
        call: &CallStats,
    ) -> Result<()> {
        let rank = self.rank;
        let dinfo = self.plan.node_meta[rank].dispatch[rank];
        let strategy = self.choose_strategy(dinfo.as_ref(), rank, m_total);
        match strategy {
            Strategy::Drain => Ok(()),
            Strategy::NoDispatch => {
                // batches will read the gen files directly in phase 4
                none_mode[rank].store(true, Ordering::Release);
                none_counts[rank].store(m_total, Ordering::Release);
                Ok(())
            }
            Strategy::Push => {
                let dinfo = dinfo.expect("push strategy requires a dispatch graph");
                let mut access = self.open_dispatch_access(rank, m_total, &dinfo)?;
                let mut sink = PushSink::new(self, rank);
                let rec = record_bytes::<M>();
                let mut read_bytes = 0u64;
                for (b, c) in gen_counts.iter().enumerate() {
                    if c.load(Ordering::Relaxed) == 0 {
                        continue;
                    }
                    let mut r = RecordReader::new(self.scratch.open(&gen_path(b))?);
                    while let Some((src, msg)) = RecordIter::<M>::next_record(&mut r)? {
                        read_bytes += rec as u64;
                        for batch in access.batches_of(src)? {
                            sink.write::<M>(batch as usize, src, &msg)?;
                        }
                    }
                }
                call.dispatch_disk_read.fetch_add(read_bytes, Ordering::Relaxed);
                sink.finish(msg_counts, call)
            }
            Strategy::Pull => {
                // one pass: every interested batch's pull cursor rides the
                // same scan of the gen stream (sources ascend across files)
                let mut lists: Vec<(usize, Vec<u32>)> = Vec::new();
                for b in 0..self.plan.n_batches(rank) {
                    if self.chunk_map[rank][b].is_none() {
                        continue;
                    }
                    lists.push((
                        b,
                        dfo_part::dispatch::read_pull_list(&self.disk, &paths::pull(rank, b))?,
                    ));
                }
                let mut routes: Vec<PullRoute> =
                    lists.iter().map(|(b, l)| PullRoute::new(*b, l)).collect();
                let rec = record_bytes::<M>();
                let mut read_bytes = 0u64;
                let mut write_bytes = 0u64;
                for (gb, c) in gen_counts.iter().enumerate() {
                    if c.load(Ordering::Relaxed) == 0 {
                        continue;
                    }
                    let mut r = RecordReader::new(self.scratch.open(&gen_path(gb))?);
                    while let Some((src, msg)) = RecordIter::<M>::next_record(&mut r)? {
                        read_bytes += rec as u64;
                        for route in &mut routes {
                            if route.cursor.contains(src) {
                                route.write::<M>(self, rank, src, &msg)?;
                                write_bytes += rec as u64;
                            }
                        }
                    }
                }
                call.dispatch_disk_read.fetch_add(read_bytes, Ordering::Relaxed);
                call.dispatch_disk_write.fetch_add(write_bytes, Ordering::Relaxed);
                for route in routes {
                    route.finish(msg_counts, rank)?;
                }
                Ok(())
            }
        }
    }

    /// Phase 3 for one remote stream.
    fn recv_dispatch<M: Pod>(
        &self,
        p: Rank,
        seq: u64,
        msg_counts: &[Vec<AtomicU64>],
        none_mode: &[AtomicBool],
        none_counts: &[AtomicU64],
        call: &CallStats,
    ) -> Result<()> {
        let mut stream = self.net.recv_stream(p, seq);
        let header = stream
            .next_chunk()?
            .ok_or_else(|| DfoError::Corrupt(format!("stream from {p} missing header")))?;
        let bound = u64::from_le_bytes(header[..8].try_into().unwrap());
        let dinfo = self.plan.node_meta[self.rank].dispatch[p];
        let strategy = self.choose_strategy(dinfo.as_ref(), p, bound);
        let rec = record_bytes::<M>();

        match strategy {
            Strategy::Drain => {
                while stream.next_chunk()?.is_some() {}
                Ok(())
            }
            Strategy::NoDispatch => {
                let mut w = self.scratch.create(&none_path(p))?;
                let mut total = 0u64;
                let mut write_bytes = 0u64;
                while let Some(chunk) = stream.next_chunk()? {
                    w.write_all(&chunk).map_err(|e| DfoError::io("spilling raw stream", e))?;
                    write_bytes += chunk.len() as u64;
                    total += chunk.len() as u64 / rec as u64;
                }
                w.finish()?;
                call.dispatch_disk_write.fetch_add(write_bytes, Ordering::Relaxed);
                none_counts[p].store(total, Ordering::Release);
                none_mode[p].store(true, Ordering::Release);
                Ok(())
            }
            Strategy::Push => {
                let dinfo = dinfo.expect("push strategy requires a dispatch graph");
                let mut access = self.open_dispatch_access(p, bound, &dinfo)?;
                let mut sink = PushSink::new(self, p);
                while let Some(chunk) = stream.next_chunk()? {
                    debug_assert_eq!(chunk.len() % rec, 0, "frames carry whole records");
                    let mut off = 0;
                    while off < chunk.len() {
                        let (src, msg) = parse_record::<M>(&chunk, off);
                        off += rec;
                        for batch in access.batches_of(src)? {
                            sink.write::<M>(batch as usize, src, &msg)?;
                        }
                    }
                }
                sink.finish(msg_counts, call)
            }
            Strategy::Pull => {
                // stage the stream, then route it to every interested batch
                // in a single pass (mirrors dispatch_self's Pull mode; the
                // staged records keep the sender's ascending source order)
                let stage = format!("msgs/stage_p{p}.bin");
                {
                    let mut w = self.scratch.create(&stage)?;
                    let mut write_bytes = 0u64;
                    while let Some(chunk) = stream.next_chunk()? {
                        w.write_all(&chunk).map_err(|e| DfoError::io("staging stream", e))?;
                        write_bytes += chunk.len() as u64;
                    }
                    w.finish()?;
                    call.dispatch_disk_write.fetch_add(write_bytes, Ordering::Relaxed);
                }
                let mut lists: Vec<(usize, Vec<u32>)> = Vec::new();
                for b in 0..self.plan.n_batches(self.rank) {
                    if self.chunk_map[p][b].is_none() {
                        continue;
                    }
                    lists.push((
                        b,
                        dfo_part::dispatch::read_pull_list(&self.disk, &paths::pull(p, b))?,
                    ));
                }
                let mut routes: Vec<PullRoute> =
                    lists.iter().map(|(b, l)| PullRoute::new(*b, l)).collect();
                let mut r = RecordReader::new(self.scratch.open(&stage)?);
                let mut read_bytes = 0u64;
                let mut write_bytes = 0u64;
                while let Some((src, msg)) = RecordIter::<M>::next_record(&mut r)? {
                    read_bytes += rec as u64;
                    for route in &mut routes {
                        if route.cursor.contains(src) {
                            route.write::<M>(self, p, src, &msg)?;
                            write_bytes += rec as u64;
                        }
                    }
                }
                call.dispatch_disk_read.fetch_add(read_bytes, Ordering::Relaxed);
                call.dispatch_disk_write.fetch_add(write_bytes, Ordering::Relaxed);
                for route in routes {
                    route.finish(msg_counts, p)?;
                }
                Ok(())
            }
        }
    }

    /// §4.2 adaptive choice. Push pays the index plus one read and one write
    /// of the messages; no-dispatch makes every interested batch rescan the
    /// whole stream in phase 4. Pull is only selected by explicit override:
    /// its benefit over push is *latency* (a batch can start processing as
    /// soon as it has pulled), which this engine's phase barrier before
    /// processing does not exploit.
    fn choose_strategy(&self, dinfo: Option<&ChunkInfo>, p: Rank, bound: u64) -> Strategy {
        let Some(dinfo) = dinfo else {
            return Strategy::Drain;
        };
        if bound == 0 {
            return Strategy::Drain;
        }
        if let Some(kind) = self.cfg.dispatch_override {
            return match kind {
                DispatchKind::Push => Strategy::Push,
                DispatchKind::Pull => Strategy::Pull,
                DispatchKind::None => Strategy::NoDispatch,
            };
        }
        let n_src = self.plan.partitions[p].len();
        let interested_batches = self.chunk_map[p].iter().filter(|c| c.is_some()).count() as u64;
        let index_cost = if dinfo.has_csr {
            (2 * dinfo.n_nonzero_src).min((self.cfg.gamma.saturating_mul(bound)).min(n_src))
        } else {
            2 * dinfo.n_nonzero_src
        };
        let push_cost = index_cost + 2 * bound;
        let none_cost = interested_batches * bound;
        if push_cost < none_cost {
            Strategy::Push
        } else {
            Strategy::NoDispatch
        }
    }

    /// Opens the dispatching graph from partition `p`, either fully loaded
    /// (through the chunk cache when one is configured) or in
    /// positioned-read seek mode when messages are few (§4.1).
    fn open_dispatch_access(
        &self,
        p: Rank,
        bound: u64,
        dinfo: &ChunkInfo,
    ) -> Result<DispatchAccess> {
        let n_src = self.plan.partitions[p].len();
        // seek mode needs the raw on-disk layout: compressed dispatch
        // graphs (the compress_chunks default) always load whole
        if self.cfg.repr_override.is_none()
            && !self.cfg.compress_chunks
            && dfo_part::csr::should_seek(dinfo.has_csr, bound, n_src, self.cfg.gamma)
        {
            if let Some(seeker) =
                dfo_part::csr::ChunkSeeker::<()>::open(&self.disk, &paths::dispatch(p))?
            {
                return Ok(DispatchAccess::Seek(seeker));
            }
            // the file on disk is compressed despite the current config
            // (stale preprocessing): fall through to a full load
        }
        let want = self.cfg.repr_override.unwrap_or_else(|| {
            choose_repr(dinfo.has_csr, dinfo.n_nonzero_src, n_src, bound, self.cfg.gamma)
        });
        let dg = self.load_dispatch_graph(p, want)?;
        Ok(DispatchAccess::Loaded { dg, cursor: MergeCursor::new() })
    }

    /// Work arriving at destination batch `b` from partition `p` this call:
    /// `None` if the batch has nothing to replay from `p`, else the chunk
    /// metadata, the *pushed* record count (0 = replay the undispatched
    /// buffer) and the total message count driving the §4.1 cost model.
    /// `process_batch` and `spawn_prefetcher` must share this rule — if
    /// they disagree, read-ahead decodes chunks under keys the consumer
    /// never looks up.
    fn batch_messages(
        &self,
        b: usize,
        p: Rank,
        msg_counts: &[Vec<AtomicU64>],
        none_mode: &[AtomicBool],
        none_counts: &[AtomicU64],
    ) -> Option<(ChunkInfo, u64, u64)> {
        let cinfo = self.chunk_map[p][b]?;
        let pushed = msg_counts[b][p].load(Ordering::Acquire);
        let in_none = none_mode[p].load(Ordering::Acquire);
        let count = if pushed > 0 { pushed } else { none_counts[p].load(Ordering::Acquire) };
        if pushed == 0 && (!in_none || count == 0) {
            return None;
        }
        Some((cinfo, pushed, count))
    }

    /// §4.1 access choice for the edge chunk `(p, ·)` given `count` incoming
    /// messages: `None` means seek mode (which bypasses cache and prefetch
    /// by design — it exists precisely because loading the whole chunk does
    /// not pay), `Some(want)` means load the chunk decoded with that index.
    /// Compressed chunks never seek: positioned reads need the raw layout,
    /// and decode-and-discard would pay the full physical read anyway.
    fn chunk_repr(&self, cinfo: &ChunkInfo, p: Rank, count: u64) -> Option<ReprKind> {
        let n_src = self.plan.partitions[p].len();
        if self.cfg.repr_override.is_none()
            && !self.cfg.compress_chunks
            && dfo_part::csr::should_seek(cinfo.has_csr, count, n_src, self.cfg.gamma)
        {
            return None;
        }
        Some(self.full_repr(cinfo, p, count))
    }

    /// Index representation for a *full* load of chunk `(p, ·)` (the
    /// `Some` arm of [`NodeCtx::chunk_repr`], also the fallback when seek
    /// mode meets a compressed file from a stale config).
    fn full_repr(&self, cinfo: &ChunkInfo, p: Rank, count: u64) -> ReprKind {
        let n_src = self.plan.partitions[p].len();
        self.cfg.repr_override.unwrap_or_else(|| {
            choose_repr(cinfo.has_csr, cinfo.n_nonzero_src, n_src, count, self.cfg.gamma)
        })
    }

    /// Loads the decoded edge chunk `(p, b)` with index `want`, through the
    /// chunk cache (and any in-flight prefetch) when one is configured.
    fn load_chunk<E: Pod + PartialEq>(
        &self,
        p: Rank,
        b: usize,
        want: ReprKind,
    ) -> Result<Arc<IndexedChunk<E>>> {
        let read = || -> Result<IndexedChunk<E>> {
            let mut r = self.disk.open_framed(&paths::chunk(p, b))?;
            IndexedChunk::read_from(&mut r, Some(want))
        };
        let Some(cache) = &self.chunk_cache else {
            return Ok(Arc::new(self.timed_chunk_read(read)?));
        };
        let key = ChunkKey { partition: p, batch: Some(b), repr: Some(want) };
        if let Some(v) = cache.lookup(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v.downcast::<IndexedChunk<E>>().expect("chunk cache holds IndexedChunk<E>"));
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let chunk = Arc::new(self.timed_chunk_read(read)?);
        let bytes = chunk.decoded_bytes();
        let value: CachedValue = chunk.clone();
        cache.insert(key, value, bytes);
        Ok(chunk)
    }

    /// Loads the decoded dispatching graph from partition `p`, through the
    /// chunk cache when one is configured (keyed with `batch: None`).
    fn load_dispatch_graph(&self, p: Rank, want: ReprKind) -> Result<Arc<IndexedChunk<()>>> {
        let read = || -> Result<IndexedChunk<()>> {
            let mut r = self.disk.open_framed(&paths::dispatch(p))?;
            IndexedChunk::read_from(&mut r, Some(want))
        };
        let Some(cache) = &self.chunk_cache else {
            return Ok(Arc::new(self.timed_chunk_read(read)?));
        };
        let key = ChunkKey { partition: p, batch: None, repr: Some(want) };
        if let Some(v) = cache.lookup(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v
                .downcast::<IndexedChunk<()>>()
                .expect("dispatch cache holds IndexedChunk<()>"));
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let dg = Arc::new(self.timed_chunk_read(read)?);
        let bytes = dg.decoded_bytes();
        let value: CachedValue = dg.clone();
        cache.insert(key, value, bytes);
        Ok(dg)
    }

    /// Builds and starts the phase-4 read-ahead pool: the batch processing
    /// order and each chunk's access mode are fully known once dispatching
    /// finished, so background threads can load and decode the next batches'
    /// chunks while `slot` runs over the current one. Returns `None` when
    /// the cache is off (budget 0 spawns no threads), read-ahead is disabled,
    /// or every needed chunk is already resident or in seek mode.
    fn spawn_prefetcher<E: Pod + PartialEq>(
        &self,
        b_count: usize,
        msg_counts: &[Vec<AtomicU64>],
        none_mode: &[AtomicBool],
        none_counts: &[AtomicU64],
    ) -> Option<Prefetcher> {
        let cache = self.chunk_cache.as_ref()?;
        if self.cfg.prefetch_depth == 0 {
            return None;
        }
        let rank = self.rank;
        let mut order = vec![rank];
        order.extend(self.cfg.recv_order(rank));
        let mut jobs = Vec::new();
        #[allow(clippy::needless_range_loop)] // b indexes batches, chunk_map and msg_counts alike
        for b in 0..b_count {
            if self.plan.batches[rank][b].is_empty() {
                continue;
            }
            for &p in &order {
                let Some((cinfo, _, count)) =
                    self.batch_messages(b, p, msg_counts, none_mode, none_counts)
                else {
                    continue;
                };
                let Some(want) = self.chunk_repr(&cinfo, p, count) else { continue };
                let key = ChunkKey { partition: p, batch: Some(b), repr: Some(want) };
                if cache.contains(&key) {
                    continue;
                }
                let disk = self.disk.clone();
                let path = paths::chunk(p, b);
                jobs.push(PrefetchJob {
                    key,
                    group: b,
                    load: Box::new(move || {
                        let mut r = disk.open_framed(&path)?;
                        let chunk = IndexedChunk::<E>::read_from(&mut r, Some(want))?;
                        let bytes = chunk.decoded_bytes();
                        Ok((Arc::new(chunk) as CachedValue, bytes))
                    }),
                });
            }
        }
        if jobs.is_empty() {
            return None;
        }
        Some(Prefetcher::spawn(cache.clone(), jobs, self.cfg.prefetch_depth))
    }

    /// Phase 4 for one destination batch.
    #[allow(clippy::too_many_arguments)]
    fn process_batch<A, M, E>(
        &self,
        b: usize,
        slot_entries: &[Arc<ArrayEntry>],
        msg_counts: &[Vec<AtomicU64>],
        none_mode: &[AtomicBool],
        none_counts: &[AtomicU64],
        gen_counts: &[AtomicU64],
        slot: &(impl Fn(M, VertexId, VertexId, &E, &mut BatchCtx) -> A + Sync),
    ) -> Result<A>
    where
        A: Accum,
        M: Pod,
        E: Pod + PartialEq,
    {
        let rank = self.rank;
        let range = self.plan.batches[rank][b];
        if range.is_empty() {
            return Ok(A::zero());
        }
        // processing order: own messages first (they were dispatched first),
        // then peers in receive order (§4.5)
        let mut order = vec![rank];
        order.extend(self.cfg.recv_order(rank));

        // anything for this batch at all? (skip = no I/O for idle batches)
        let has_work = order
            .iter()
            .any(|&p| self.batch_messages(b, p, msg_counts, none_mode, none_counts).is_some());
        if !has_work {
            return Ok(A::zero());
        }

        let refs: Vec<&ArrayEntry> = slot_entries.iter().map(|e| e.as_ref()).collect();
        let mut ctx = BatchCtx::load(&refs, range, b, self.plan.partitions[rank].start, None)?;
        let mut acc = A::zero();
        let dst_base = self.plan.partitions[rank].start;

        for &p in &order {
            let Some((cinfo, pushed, count)) =
                self.batch_messages(b, p, msg_counts, none_mode, none_counts)
            else {
                continue;
            };
            // §4.1: with few messages and a stored CSR, *seek* into the
            // chunk with positioned reads instead of streaming it whole;
            // full loads go through the chunk cache and prefetcher
            let (chunk, seeker) = match self.chunk_repr(&cinfo, p, count) {
                None => {
                    match dfo_part::csr::ChunkSeeker::<E>::open(&self.disk, &paths::chunk(p, b))? {
                        Some(s) => (None, Some(s)),
                        // the file is compressed despite the current config
                        // (stale preprocessing): load it whole instead
                        None => {
                            let want = self.full_repr(&cinfo, p, count);
                            (Some(self.load_chunk::<E>(p, b, want)?), None)
                        }
                    }
                }
                Some(want) => (Some(self.load_chunk::<E>(p, b, want)?), None),
            };
            let use_csr = chunk.as_ref().map(|c| c.csr_idx.is_some()).unwrap_or(false);
            let src_base = self.plan.partitions[p].start;
            let mut mc = MergeCursor::new();
            let mut apply = |src: u32, msg: M, ctx: &mut BatchCtx, acc: &mut A| -> Result<()> {
                if let Some(seeker) = &seeker {
                    for (dst_local, data) in seeker.edges_of(src)? {
                        let a = slot(
                            msg,
                            src_base + src as VertexId,
                            dst_base + dst_local as VertexId,
                            &data,
                            ctx,
                        );
                        let cur = std::mem::replace(acc, A::zero());
                        *acc = cur.merge(a);
                    }
                    return Ok(());
                }
                let chunk = chunk.as_deref().unwrap();
                let edges = if use_csr { chunk.edges_of_csr(src) } else { mc.edges_of(chunk, src) };
                for e in edges {
                    let a = slot(
                        msg,
                        src_base + src as VertexId,
                        dst_base + chunk.dst[e] as VertexId,
                        &chunk.data[e],
                        ctx,
                    );
                    let cur = std::mem::replace(acc, A::zero());
                    *acc = cur.merge(a);
                }
                Ok(())
            };
            if pushed > 0 {
                let mut r = RecordReader::new(self.scratch.open(&seg_path(b, p))?);
                while let Some((src, msg)) = RecordIter::<M>::next_record(&mut r)? {
                    apply(src, msg, &mut ctx, &mut acc)?;
                }
            } else if p == rank {
                // no-dispatch over our own messages: replay the gen files
                for (gb, c) in gen_counts.iter().enumerate() {
                    if c.load(Ordering::Relaxed) == 0 {
                        continue;
                    }
                    let mut r = RecordReader::new(self.scratch.open(&gen_path(gb))?);
                    while let Some((src, msg)) = RecordIter::<M>::next_record(&mut r)? {
                        apply(src, msg, &mut ctx, &mut acc)?;
                    }
                }
            } else {
                let mut r = RecordReader::new(self.scratch.open(&none_path(p))?);
                while let Some((src, msg)) = RecordIter::<M>::next_record(&mut r)? {
                    apply(src, msg, &mut ctx, &mut acc)?;
                }
            }
        }
        ctx.write_back(b)?;
        Ok(acc)
    }
}

/// Access mode to a dispatching graph during push dispatching. The loaded
/// variant holds an `Arc` so the decoded graph can live on in the chunk
/// cache after this stream is done.
enum DispatchAccess {
    Loaded { dg: Arc<IndexedChunk<()>>, cursor: MergeCursor },
    Seek(dfo_part::csr::ChunkSeeker<()>),
}

impl DispatchAccess {
    /// Destination batches of `src`'s messages.
    fn batches_of(&mut self, src: u32) -> Result<Vec<u32>> {
        match self {
            DispatchAccess::Loaded { dg, cursor } => {
                let range = if dg.csr_idx.is_some() {
                    dg.edges_of_csr(src)
                } else {
                    cursor.edges_of(dg, src)
                };
                Ok(dg.dst[range].to_vec())
            }
            DispatchAccess::Seek(seeker) => {
                Ok(seeker.edges_of(src)?.into_iter().map(|(b, _)| b).collect())
            }
        }
    }
}

/// Lazily-opened per-batch segment writers for push dispatching. Record
/// counts and byte stats accumulate locally and flush once in
/// [`PushSink::finish`] — phase 4 only reads `msg_counts` after the
/// dispatch threads have joined, so per-record atomics bought nothing.
struct PushSink<'a> {
    node: &'a NodeCtx,
    src_partition: Rank,
    writers: Vec<Option<dfo_storage::DiskWriter>>,
    counts: Vec<u64>,
    write_bytes: u64,
}

impl<'a> PushSink<'a> {
    fn new(node: &'a NodeCtx, src_partition: Rank) -> Self {
        let b = node.plan.n_batches(node.rank);
        Self {
            node,
            src_partition,
            writers: (0..b).map(|_| None).collect(),
            counts: vec![0; b],
            write_bytes: 0,
        }
    }

    fn write<M: Pod>(&mut self, batch: usize, src: u32, msg: &M) -> Result<()> {
        let w = match &mut self.writers[batch] {
            Some(w) => w,
            None => {
                self.writers[batch] = Some(
                    self.node
                        .scratch
                        .create_with_buffer(&seg_path(batch, self.src_partition), DISPATCH_BUF)?,
                );
                self.writers[batch].as_mut().unwrap()
            }
        };
        crate::messages::write_record(w, src, msg)?;
        self.write_bytes += record_bytes::<M>() as u64;
        self.counts[batch] += 1;
        Ok(())
    }

    fn finish(self, msg_counts: &[Vec<AtomicU64>], call: &CallStats) -> Result<()> {
        for w in self.writers.into_iter().flatten() {
            w.finish()?;
        }
        for (b, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                msg_counts[b][self.src_partition].fetch_add(n, Ordering::Release);
            }
        }
        call.dispatch_disk_write.fetch_add(self.write_bytes, Ordering::Relaxed);
        Ok(())
    }
}

/// One destination batch's routing state during single-pass Pull
/// dispatching: its sorted pull-list cursor, a lazily-created segment
/// writer, and the matched-record count (flushed once in
/// [`PullRoute::finish`]).
struct PullRoute<'a> {
    batch: usize,
    cursor: FilterCursor<'a>,
    writer: Option<dfo_storage::DiskWriter>,
    matched: u64,
}

impl<'a> PullRoute<'a> {
    fn new(batch: usize, list: &'a [u32]) -> Self {
        Self { batch, cursor: FilterCursor::new(list), writer: None, matched: 0 }
    }

    fn write<M: Pod>(&mut self, node: &NodeCtx, from: Rank, src: u32, msg: &M) -> Result<()> {
        let w = match &mut self.writer {
            Some(w) => w,
            None => {
                self.writer = Some(
                    node.scratch.create_with_buffer(&seg_path(self.batch, from), DISPATCH_BUF)?,
                );
                self.writer.as_mut().unwrap()
            }
        };
        crate::messages::write_record(w, src, msg)?;
        self.matched += 1;
        Ok(())
    }

    fn finish(self, msg_counts: &[Vec<AtomicU64>], from: Rank) -> Result<()> {
        if let Some(w) = self.writer {
            w.finish()?;
        }
        msg_counts[self.batch][from].store(self.matched, Ordering::Release);
        Ok(())
    }
}

fn gen_path(b: usize) -> String {
    format!("msgs/gen_b{b}.bin")
}

fn seg_path(b: usize, p: Rank) -> String {
    format!("msgs/in_b{b}_p{p}.bin")
}

fn none_path(p: Rank) -> String {
    format!("msgs/in_all_p{p}.bin")
}

#[allow(unused)]
fn repr_is_csr(want: ReprKind) -> bool {
    want == ReprKind::Csr
}
