//! A resident TCP mesh: bootstrap once, serve a stream of jobs.
//!
//! [`crate::Cluster::run_distributed`] ties one mesh bootstrap to one job —
//! every call re-dials every peer, re-handshakes, and tears the transport
//! down again. A resident service daemon amortizes that: it calls
//! [`ResidentMesh::connect`] **once** at startup and then runs any number
//! of jobs over the same established endpoint with [`ResidentMesh::run_job`],
//! interleaved with control-plane messages ([`ResidentMesh::ctrl_send`] /
//! [`ResidentMesh::ctrl_recv`]) on the reserved control tag-space
//! ([`dfo_net::CTRL_TAG_BIT`]) that can never contend with engine streams.
//!
//! ## Why serial jobs are safe — and concurrent ones are not
//!
//! Each `run_job` call builds a fresh [`NodeCtx`] over the retained
//! endpoint. Engine stream tags restart at 0 per context, which is safe
//! precisely because jobs are serial: every stream of job *n* is fully
//! consumed before job *n+1* opens a stream on the same tag (the demux
//! reclaims a (peer, tag) queue when its last frame is popped). The
//! transport's collective sequence counter, by contrast, lives on the
//! endpoint and keeps counting *across* jobs, so collective tags never
//! repeat. Two jobs interleaving on one mesh would break both properties —
//! which is why the daemon's scheduler orders jobs instead of overlapping
//! them, and why `run_job` takes `&mut self`.
//!
//! ## Failure model
//!
//! * **Cooperative cancellation** is a clean collective unwind — every rank
//!   agrees at the same `Process`-call boundary — so a cancelled job
//!   returns [`DfoError::Cancelled`] and the mesh stays healthy for the
//!   next job.
//! * Any **other** job failure (error or panic) poisons the mesh exactly
//!   like `run_distributed`: survivors' collectives fail with `NetClosed`
//!   instead of hanging. The mesh is then dead; subsequent `run_job` and
//!   control calls fail fast, and the daemon is expected to exit (its
//!   supervisor may relaunch the whole daemon under a bumped epoch).

use crate::cluster::Cluster;
use crate::node::NodeCtx;
use bytes::Bytes;
use dfo_net::{Endpoint, TcpCluster, TcpOpts, CTRL_TAG_BIT};
use dfo_part::plan::Plan;
use dfo_types::{DfoError, EngineConfig, Rank, Result};
use std::time::Duration;

/// One rank's resident mesh endpoint. See the module docs.
pub struct ResidentMesh {
    rank: Rank,
    nodes: usize,
    /// `None` only transiently inside [`ResidentMesh::run_job`] (the job's
    /// `NodeCtx` owns the endpoint for the duration) or permanently after a
    /// context build failed so badly the endpoint was lost.
    ep: Option<Endpoint>,
}

impl ResidentMesh {
    /// Joins the TCP mesh described by `cfg.peers` as `rank`, blocking
    /// until every pairwise connection is up and epoch-handshaken — the
    /// same bootstrap as [`Cluster::run_distributed`], performed once for
    /// the daemon's lifetime.
    pub fn connect(cfg: &EngineConfig, rank: Rank) -> Result<Self> {
        let peers = cfg.peers.clone().ok_or_else(|| {
            DfoError::Config("ResidentMesh::connect needs cfg.peers (the rank address list)".into())
        })?;
        if rank >= cfg.nodes {
            return Err(DfoError::Config(format!(
                "rank {rank} outside cluster of {} nodes",
                cfg.nodes
            )));
        }
        let ep = TcpCluster::connect(
            rank,
            &peers,
            cfg.net_bw,
            cfg.record_traffic,
            TcpOpts {
                connect_timeout: Duration::from_secs(cfg.connect_timeout_secs),
                epoch: cfg.epoch,
            },
        )?;
        Ok(Self { rank, nodes: cfg.nodes, ep: Some(ep) })
    }

    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn ep(&self) -> Result<&Endpoint> {
        self.ep.as_ref().ok_or_else(|| {
            DfoError::NetClosed("resident mesh endpoint was lost to an earlier failure".into())
        })
    }

    /// Sends one control-plane message to `dst` as a complete stream on the
    /// reserved control tag. Control messages are strictly one-at-a-time
    /// per peer (send, then wait for the peer to act), which keeps the
    /// outstanding control-frame count within the demux head-of-line budget
    /// ([`dfo_net::DEMUX_QUEUE_DEPTH`]).
    pub fn ctrl_send(&self, dst: Rank, payload: Vec<u8>) -> Result<()> {
        self.ep()?.send_stream(dst, CTRL_TAG_BIT, Bytes::from(payload))
    }

    /// Receives one complete control-plane message from `src` (blocking).
    pub fn ctrl_recv(&self, src: Rank) -> Result<Vec<u8>> {
        self.ep()?.recv_all(src, CTRL_TAG_BIT)
    }

    /// Mesh-wide barrier outside any job (e.g. a coordinated shutdown).
    pub fn barrier(&self) -> Result<()> {
        self.ep()?.barrier();
        Ok(())
    }

    /// Runs one job over the resident mesh, SPMD-style: every rank of the
    /// mesh must call this with the same `cluster` graph, `scope` and an
    /// equivalent `f`, exactly like one closure execution of
    /// [`Cluster::run_distributed`] — but over the already-established
    /// endpoint, with no re-dial, no re-handshake and no re-preprocess.
    ///
    /// The job's mutable state (vertex arrays, checkpoints, spills) lives
    /// under the private scratch scope `sub` of this rank's node disk;
    /// graph data is read from the node root. Call
    /// [`Cluster::remove_scratch`] afterwards like any scoped run.
    ///
    /// A [`DfoError::Cancelled`] return leaves the mesh healthy (see the
    /// module docs); any other failure poisons it.
    pub fn run_job<T>(
        &mut self,
        cluster: &Cluster,
        scope: &str,
        f: impl FnOnce(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        let cfg = cluster.config().clone();
        if cfg.nodes != self.nodes {
            return Err(DfoError::Config(format!(
                "graph cluster spans {} nodes but the resident mesh has {}",
                cfg.nodes, self.nodes
            )));
        }
        let disk = cluster.disks()[self.rank].clone();
        // validate everything that can fail *before* committing the
        // endpoint to the context, so a bad graph directory is a per-job
        // error rather than the end of the mesh
        Plan::load(&disk)?;
        let scratch = disk.scoped(scope)?;
        let ep = self.ep.take().ok_or_else(|| {
            DfoError::NetClosed("resident mesh endpoint was lost to an earlier failure".into())
        })?;
        // on a failed build the endpoint goes down with it; the mesh is lost
        let mut ctx =
            NodeCtx::with_disks(self.rank, cfg, disk, scratch, ep, cluster.chunk_cache(self.rank))?;
        ctx.rollbacks = cluster.rollbacks_handle();
        ctx.set_telemetry(cluster.rank_telemetry(self.rank, None));
        // one-rank-per-process deployment: injected crashes kill the process
        ctx.crash_abort = true;
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
        let out = match res {
            Ok(Ok(v)) => Ok(v),
            // a cooperative cancellation unwound every rank together at the
            // same call boundary — the mesh is still consistent, keep it
            Ok(Err(e @ DfoError::Cancelled(_))) => Err(e),
            Ok(Err(e)) => {
                ctx.net().poison_collective();
                Err(e)
            }
            Err(panic) => {
                ctx.net().poison_collective();
                Err(crate::cluster::panic_to_error(panic, self.rank))
            }
        };
        // hand the endpoint back for the next job (poisoned endpoints fail
        // fast rather than hang, so returning one is safe)
        self.ep = Some(ctx.into_net());
        out
    }
}
