//! A resident TCP mesh: bootstrap once, serve a stream of **concurrent**
//! jobs.
//!
//! [`crate::Cluster::run_distributed`] ties one mesh bootstrap to one job —
//! every call re-dials every peer, re-handshakes, and tears the transport
//! down again. A resident service daemon amortizes that: it calls
//! [`ResidentMesh::connect`] **once** at startup and then runs any number
//! of jobs over the same established endpoint with [`ResidentMesh::run_job`]
//! / [`ResidentMesh::run_job_as`], interleaved with control-plane messages
//! ([`ResidentMesh::ctrl_send`] / [`ResidentMesh::ctrl_recv`]) on the
//! reserved control tag-space ([`dfo_net::CTRL_TAG_BIT`]) that can never
//! contend with engine streams.
//!
//! ## The tag-namespace invariant: why concurrent jobs are safe
//!
//! Each job runs over a **job view** of the mesh endpoint
//! ([`dfo_net::Endpoint::job_view`]): every stream and collective tag the
//! job emits carries the job's namespace base
//! ([`dfo_net::job_tag_base`]) in bits 44..61 of the tag. Engine stream
//! tags still restart at 0 per job and each job counts its own collective
//! sequence from 0 — but two jobs' tags can no longer collide, because
//! their namespace fields differ, and neither can collide with the mesh's
//! *master* namespace (field 0: out-of-job barriers, control fan-out
//! acknowledgement), which [`job_tag_base`](dfo_net::job_tag_base)
//! deliberately skips. The TCP demux routes by full tag, and collectives
//! relay through rank 0 keyed by full tag, so any number of jobs may
//! overlap on one mesh with their traffic pairwise isolated.
//!
//! Three rules keep the invariant airtight:
//!
//! 1. **Equal job ids across ranks.** All ranks must enter a job under the
//!    same id ([`ResidentMesh::run_job_as`]; a coordinator assigns ids and
//!    fans them out). [`ResidentMesh::run_job`] allocates from a local
//!    counter and is only deterministic for meshes driven *serially* by
//!    identical call sequences on every rank.
//! 2. **One collective sequence per job.** The job's collective counter
//!    lives on the mesh (not the view), so a post-job
//!    [`ResidentMesh::job_barrier`] continues the job's sequence in
//!    lockstep instead of restarting it.
//! 3. **Reclamation on every exit path.** [`ResidentMesh::end_job`] drops
//!    the job's demux queues and marks the namespace dead, so a job that
//!    died mid-stream can neither leak queues nor head-of-line-block an
//!    overlapping job.
//!
//! Concurrent jobs are a property of the **TCP** backend: the in-process
//! simulation's shared-memory collective ignores tags (see
//! [`dfo_net::Transport`]), and a resident mesh is always TCP.
//!
//! ## Failure model
//!
//! * **Cooperative cancellation** is a clean collective unwind — every rank
//!   agrees at the same `Process`-call boundary — so a cancelled job
//!   returns [`DfoError::Cancelled`] and the mesh stays healthy for the
//!   jobs overlapping it and the next ones.
//! * Any **other** job failure (error or panic) poisons the mesh exactly
//!   like `run_distributed`: survivors' collectives fail with `NetClosed`
//!   instead of hanging — including every overlapping job, which unwinds
//!   with a retryable error. The mesh is then dead; the daemon drains its
//!   workers and rebuilds the mesh in place under a bumped epoch (see
//!   `dfo-service`'s daemon), re-running retryable jobs up to their
//!   `max_retries` bound.

use crate::cluster::Cluster;
use crate::node::NodeCtx;
use bytes::Bytes;
use dfo_net::{Endpoint, TcpCluster, TcpOpts, CTRL_TAG_BIT};
use dfo_part::plan::Plan;
use dfo_types::{DfoError, EngineConfig, Rank, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One rank's resident mesh endpoint. See the module docs.
pub struct ResidentMesh {
    rank: Rank,
    nodes: usize,
    /// The master view (tag namespace 0). Job views are derived per job
    /// and dropped when the job ends; the master never leaves the mesh.
    ep: Endpoint,
    /// Job-id allocator for [`ResidentMesh::run_job`] (serial direct
    /// callers); coordinated deployments assign ids externally and use
    /// [`ResidentMesh::run_job_as`].
    next_job: AtomicU64,
    /// Live jobs' collective sequence counters, so successive views of one
    /// job (the run, then [`ResidentMesh::job_barrier`]) share a sequence.
    coll_counters: Mutex<HashMap<u64, Arc<AtomicU64>>>,
}

impl ResidentMesh {
    /// Joins the TCP mesh described by `cfg.peers` as `rank`, blocking
    /// until every pairwise connection is up and epoch-handshaken — the
    /// same bootstrap as [`Cluster::run_distributed`], performed once for
    /// the daemon's lifetime (or once per in-place relaunch, under a
    /// bumped `cfg.epoch`).
    pub fn connect(cfg: &EngineConfig, rank: Rank) -> Result<Self> {
        let peers = cfg.peers.clone().ok_or_else(|| {
            DfoError::Config("ResidentMesh::connect needs cfg.peers (the rank address list)".into())
        })?;
        if rank >= cfg.nodes {
            return Err(DfoError::Config(format!(
                "rank {rank} outside cluster of {} nodes",
                cfg.nodes
            )));
        }
        let ep = TcpCluster::connect(
            rank,
            &peers,
            cfg.net_bw,
            cfg.record_traffic,
            TcpOpts {
                connect_timeout: Duration::from_secs(cfg.connect_timeout_secs),
                epoch: cfg.epoch,
            },
        )?;
        Ok(Self {
            rank,
            nodes: cfg.nodes,
            ep,
            next_job: AtomicU64::new(0),
            coll_counters: Mutex::new(HashMap::new()),
        })
    }

    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Sends one control-plane message to `dst` as a complete stream on the
    /// reserved control tag. Concurrent control senders must serialize
    /// whole messages per peer (a message spans several frames and the
    /// demux queue is FIFO per (peer, tag)) and keep the outstanding
    /// control-frame count within the demux head-of-line budget
    /// ([`dfo_net::DEMUX_QUEUE_DEPTH`]) — the daemon does both.
    pub fn ctrl_send(&self, dst: Rank, payload: Vec<u8>) -> Result<()> {
        self.ep.send_stream(dst, CTRL_TAG_BIT, Bytes::from(payload))
    }

    /// Receives one complete control-plane message from `src` (blocking).
    pub fn ctrl_recv(&self, src: Rank) -> Result<Vec<u8>> {
        self.ep.recv_all(src, CTRL_TAG_BIT)
    }

    /// Mesh-wide barrier outside any job (e.g. a coordinated shutdown), in
    /// the master namespace. Every rank must call out-of-job barriers in
    /// the same order — the usual SPMD discipline, now scoped to the
    /// master namespace only.
    pub fn barrier(&self) -> Result<()> {
        self.ep.try_barrier()
    }

    /// Poisons the mesh: every blocked collective and stream on every rank
    /// fails with `NetClosed` instead of hanging. Idempotent. A daemon
    /// calls this before tearing down a mesh it has judged dead for a
    /// *local* reason (say, a scratch I/O failure after a job), so peers
    /// observe the death instead of waiting forever.
    pub fn poison(&self) {
        self.ep.poison_collective();
    }

    /// Runs one job with a mesh-allocated id. Safe only for meshes driven
    /// **serially with identical call sequences on every rank** (each
    /// rank's allocator then assigns equal ids) — a concurrent coordinator
    /// must assign ids itself and use [`ResidentMesh::run_job_as`].
    pub fn run_job<T>(
        &self,
        cluster: &Cluster,
        scope: &str,
        f: impl FnOnce(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        let job_id = self.next_job.fetch_add(1, Ordering::SeqCst);
        let out = self.run_job_as(job_id, cluster, scope, f);
        // serial callers have no post-job barrier/reclaim protocol of
        // their own; settle and reclaim here so the next job starts clean
        let _ = self.job_barrier(job_id);
        self.end_job(job_id);
        out
    }

    /// Runs one job over the resident mesh under the caller-assigned
    /// `job_id`, SPMD-style: every rank of the mesh must call this with
    /// the same `job_id`, `cluster` graph, `scope` and an equivalent `f`,
    /// exactly like one closure execution of [`Cluster::run_distributed`]
    /// — but over a job view of the already-established endpoint, with no
    /// re-dial, no re-handshake and no re-preprocess. Jobs with distinct
    /// ids may overlap freely (worker threads of one process each calling
    /// this); see the module docs for the namespace invariant.
    ///
    /// The job's mutable state (vertex arrays, checkpoints, spills) lives
    /// under the private scratch scope `scope` of this rank's node disk;
    /// graph data is read from the node root. Afterwards the caller runs
    /// [`ResidentMesh::job_barrier`], removes the scratch, and calls
    /// [`ResidentMesh::end_job`].
    ///
    /// A [`DfoError::Cancelled`] return leaves the mesh healthy (see the
    /// module docs); any other failure poisons it — taking every
    /// overlapping job down with a retryable `NetClosed`.
    pub fn run_job_as<T>(
        &self,
        job_id: u64,
        cluster: &Cluster,
        scope: &str,
        f: impl FnOnce(&mut NodeCtx) -> Result<T>,
    ) -> Result<T> {
        let cfg = cluster.config().clone();
        if cfg.nodes != self.nodes {
            return Err(DfoError::Config(format!(
                "graph cluster spans {} nodes but the resident mesh has {}",
                cfg.nodes, self.nodes
            )));
        }
        let disk = cluster.disks()[self.rank].clone();
        // validate everything that can fail *before* building the job
        // view, so a bad graph directory is a per-job error rather than
        // the end of the mesh
        Plan::load(&disk)?;
        let scratch = disk.scoped(scope)?;
        let view = self.ep.job_view(job_id, self.coll_counter(job_id));
        // a failed context build drops only the view; the master endpoint
        // (and with it the mesh) survives
        let mut ctx = NodeCtx::with_disks(
            self.rank,
            cfg,
            disk,
            scratch,
            view,
            cluster.chunk_cache(self.rank),
        )?;
        ctx.rollbacks = cluster.rollbacks_handle();
        ctx.set_telemetry(cluster.rank_telemetry(self.rank, None));
        // one-rank-per-process deployment: injected crashes kill the process
        ctx.crash_abort = true;
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
        match res {
            Ok(Ok(v)) => Ok(v),
            // a cooperative cancellation unwound every rank together at the
            // same call boundary — the mesh is still consistent, keep it
            Ok(Err(e @ DfoError::Cancelled(_))) => Err(e),
            Ok(Err(e)) => {
                ctx.net().poison_collective();
                Err(e)
            }
            Err(panic) => {
                ctx.net().poison_collective();
                Err(crate::cluster::panic_to_error(panic, self.rank))
            }
        }
    }

    /// Barrier inside job `job_id`'s namespace, continuing the job's
    /// collective sequence — the post-job settle before scratch removal
    /// ("no rank deletes scratch another rank still reads"). Every rank
    /// that ran the job must call it, and only once per run, like any
    /// collective.
    pub fn job_barrier(&self, job_id: u64) -> Result<()> {
        self.ep.job_view(job_id, self.coll_counter(job_id)).try_barrier()
    }

    /// Retires job `job_id` on this rank: forgets its collective counter
    /// and reclaims its receive-side demux state, dropping any frames of
    /// the job still in flight. Call on **every** exit path — success,
    /// cancellation, or failure — after the job's views are gone.
    pub fn end_job(&self, job_id: u64) {
        self.coll_counters.lock().remove(&job_id);
        self.ep.reclaim_job(job_id);
    }

    fn coll_counter(&self, job_id: u64) -> Arc<AtomicU64> {
        self.coll_counters.lock().entry(job_id).or_default().clone()
    }
}
