//! Vertex arrays (the paper's `VertexArray<T>`) and the per-batch UDF view.
//!
//! A vertex array lives on disk in per-batch blocks managed by the
//! copy-on-write [`dfo_storage::VersionedArrayStore`]. During a `Process`
//! call the engine loads exactly the blocks of the batch being worked on —
//! this is the mechanism that bounds the span of random access (§2.2).
//!
//! In the Table 6 "no batching" ablation, arrays are instead accessed
//! through a bounded [`dfo_storage::PageCache`], modeling the memory-mapped
//! arrays of semi-out-of-core systems under memory pressure.

use dfo_storage::{NodeDisk, PageCache, VersionedArrayStore};
use dfo_types::{bytes_of, pod_from_bytes, Pod, Result, VertexId, VertexRange};
use parking_lot::{Mutex, MutexGuard};
use std::marker::PhantomData;
use std::sync::Arc;

/// Typed handle to a named vertex array. Cheap to clone; the data lives in
/// the node's array registry.
#[derive(Clone, Debug)]
pub struct VertexArray<T> {
    name: Arc<str>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Pod> VertexArray<T> {
    pub(crate) fn new(name: &str) -> Self {
        Self { name: Arc::from(name), _marker: PhantomData }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn elem_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }
}

/// Storage backend of one array on one node.
pub(crate) enum ArrayBackend {
    /// Per-batch blocks (the normal fully-out-of-core path).
    Blocks(Mutex<VersionedArrayStore>),
    /// One bounded page cache over a flat file (no-batching ablation).
    Paged(Mutex<PageCache>),
}

/// Registry entry for one array.
pub(crate) struct ArrayEntry {
    pub name: String,
    pub elem_bytes: usize,
    pub backend: ArrayBackend,
}

impl ArrayEntry {
    /// Creates or reopens the per-batch block store of one array. When a
    /// checkpoint exists, `recover_target` caps the epoch recovery trusts —
    /// the per-call commit record's epoch for this array — so the torn tail
    /// of a crashed multi-array commit is discarded (`None` trusts the
    /// array's own `CURRENT`).
    pub fn create_blocks(
        disk: &NodeDisk,
        name: &str,
        elem_bytes: usize,
        batches: &[VertexRange],
        checkpointing: bool,
        keep: usize,
        recover_target: Option<u64>,
    ) -> Result<Self> {
        let dir = format!("arrays/{name}");
        let store = if checkpointing && VersionedArrayStore::checkpoint_exists(disk, &dir) {
            VersionedArrayStore::recover_to(disk.clone(), dir, batches.len(), keep, recover_target)?
        } else if !checkpointing && VersionedArrayStore::in_place_exists(disk, &dir) {
            VersionedArrayStore::open_in_place(disk.clone(), dir, batches.len())
        } else {
            VersionedArrayStore::create(
                disk.clone(),
                dir,
                batches.len(),
                |b| vec![0u8; (batches[b].len() as usize) * elem_bytes],
                checkpointing,
                keep,
            )?
        };
        Ok(Self {
            name: name.to_string(),
            elem_bytes,
            backend: ArrayBackend::Blocks(Mutex::new(store)),
        })
    }

    pub fn create_paged(
        disk: &NodeDisk,
        name: &str,
        elem_bytes: usize,
        partition: VertexRange,
        page_size: usize,
        cache_pages: usize,
    ) -> Result<Self> {
        let file = disk.open_random(&format!("arrays/{name}/paged.bin"), true)?;
        let len = partition.len() * elem_bytes as u64;
        let cache = PageCache::new(file, page_size, cache_pages.max(1), len);
        Ok(Self {
            name: name.to_string(),
            elem_bytes,
            backend: ArrayBackend::Paged(Mutex::new(cache)),
        })
    }

    /// Reads batch `b` bytes (blocks backend only).
    pub fn read_block(&self, b: usize) -> Result<Vec<u8>> {
        match &self.backend {
            ArrayBackend::Blocks(s) => s.lock().read_batch(b),
            ArrayBackend::Paged(_) => unreachable!("read_block on paged array"),
        }
    }

    pub fn begin_epoch(&self) {
        if let ArrayBackend::Blocks(s) = &self.backend {
            s.lock().begin_epoch();
        }
    }

    pub fn commit(&self) -> Result<()> {
        match &self.backend {
            ArrayBackend::Blocks(s) => s.lock().commit(),
            ArrayBackend::Paged(c) => c.lock().flush(),
        }
    }

    /// Whether this array retains checkpoints (i.e. belongs in the
    /// per-call commit record).
    pub fn checkpointed(&self) -> bool {
        match &self.backend {
            ArrayBackend::Blocks(s) => s.lock().is_cow(),
            ArrayBackend::Paged(_) => false,
        }
    }

    /// The array's latest committed epoch (0 for non-checkpointed arrays).
    pub fn epoch(&self) -> u64 {
        match &self.backend {
            ArrayBackend::Blocks(s) => s.lock().epoch(),
            ArrayBackend::Paged(_) => 0,
        }
    }

    /// Rolls the array back one committed checkpoint (ahead-rank recovery);
    /// returns the epoch it landed on.
    pub fn rollback_one(&self) -> Result<u64> {
        match &self.backend {
            ArrayBackend::Blocks(s) => s.lock().rollback_one(),
            ArrayBackend::Paged(_) => Err(dfo_types::DfoError::Corrupt(format!(
                "{}: rollback_one on a paged (non-checkpointed) array",
                self.name
            ))),
        }
    }
}

/// One array's data as seen while working on one batch.
enum SlotData<'a> {
    InMem { buf: Vec<u8>, dirty: bool },
    Paged { cache: MutexGuard<'a, PageCache>, partition_start: VertexId },
}

struct ArraySlot<'a> {
    entry: &'a ArrayEntry,
    data: SlotData<'a>,
}

/// The view a UDF gets of the vertex arrays of **one batch** (the paper's
/// guarantee: random access never leaves the batch).
///
/// `get`/`set` address vertices by global ID; the context checks they fall
/// inside the batch (`debug_assert` on release-hot paths).
pub struct BatchCtx<'a> {
    batch: VertexRange,
    slots: Vec<ArraySlot<'a>>,
}

impl<'a> BatchCtx<'a> {
    /// Loads the named arrays for `batch`. `preloaded` supplies bytes that
    /// the engine already read (the active bitmap, re-used instead of read
    /// twice). `batch_index` selects the block for block-backed arrays.
    pub(crate) fn load(
        entries: &[&'a ArrayEntry],
        batch: VertexRange,
        batch_index: usize,
        partition_start: VertexId,
        mut preloaded: Option<(&str, Vec<u8>)>,
    ) -> Result<Self> {
        let mut slots = Vec::with_capacity(entries.len());
        for entry in entries {
            let data = match &entry.backend {
                ArrayBackend::Blocks(store) => {
                    let buf = match &mut preloaded {
                        Some((name, bytes)) if *name == entry.name => std::mem::take(bytes),
                        _ => store.lock().read_batch(batch_index)?,
                    };
                    debug_assert_eq!(buf.len(), batch.len() as usize * entry.elem_bytes);
                    SlotData::InMem { buf, dirty: false }
                }
                ArrayBackend::Paged(cache) => {
                    SlotData::Paged { cache: cache.lock(), partition_start }
                }
            };
            slots.push(ArraySlot { entry, data });
        }
        Ok(Self { batch, slots })
    }

    /// The vertex range of the batch being processed.
    pub fn batch(&self) -> VertexRange {
        self.batch
    }

    #[inline]
    fn slot_index(&self, name: &str, elem: usize) -> usize {
        for (i, s) in self.slots.iter().enumerate() {
            if s.entry.name == name {
                assert_eq!(
                    s.entry.elem_bytes, elem,
                    "array {name} accessed with wrong element type"
                );
                return i;
            }
        }
        panic!("array {name:?} was not listed in this Process call");
    }

    /// Reads vertex `v`'s value from `arr`.
    #[inline]
    pub fn get<T: Pod>(&mut self, arr: &VertexArray<T>, v: VertexId) -> T {
        debug_assert!(self.batch.contains(v), "vertex {v} outside batch {:?}", self.batch);
        let i = self.slot_index(arr.name(), std::mem::size_of::<T>());
        let elem = std::mem::size_of::<T>();
        match &mut self.slots[i].data {
            SlotData::InMem { buf, .. } => {
                let off = (v - self.batch.start) as usize * elem;
                pod_from_bytes(&buf[off..off + elem])
            }
            SlotData::Paged { cache, partition_start } => {
                let off = (v - *partition_start) * elem as u64;
                let mut tmp = vec![0u8; elem];
                cache.read_at(off, &mut tmp).expect("page cache read");
                pod_from_bytes(&tmp)
            }
        }
    }

    /// Writes vertex `v`'s value in `arr`.
    #[inline]
    pub fn set<T: Pod>(&mut self, arr: &VertexArray<T>, v: VertexId, value: T) {
        debug_assert!(self.batch.contains(v), "vertex {v} outside batch {:?}", self.batch);
        let i = self.slot_index(arr.name(), std::mem::size_of::<T>());
        let elem = std::mem::size_of::<T>();
        match &mut self.slots[i].data {
            SlotData::InMem { buf, dirty } => {
                let off = (v - self.batch.start) as usize * elem;
                buf[off..off + elem].copy_from_slice(bytes_of(&value));
                *dirty = true;
            }
            SlotData::Paged { cache, partition_start } => {
                let off = (v - *partition_start) * elem as u64;
                cache.write_at(off, bytes_of(&value)).expect("page cache write");
            }
        }
    }

    /// Writes every dirty in-memory slot back to its store (paged slots are
    /// flushed when the Process call commits).
    pub(crate) fn write_back(self, batch_index: usize) -> Result<()> {
        for slot in self.slots {
            if let SlotData::InMem { buf, dirty: true } = slot.data {
                match &slot.entry.backend {
                    ArrayBackend::Blocks(store) => {
                        let mut s = store.lock();
                        s.write_batch(batch_index, &buf)?;
                    }
                    ArrayBackend::Paged(_) => unreachable!(),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::TempDir;

    fn blocks_entry(td: &TempDir) -> ArrayEntry {
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let batches = vec![VertexRange::new(0, 4), VertexRange::new(4, 7)];
        ArrayEntry::create_blocks(&disk, "dist", 4, &batches, false, 1, None).unwrap()
    }

    #[test]
    fn get_set_roundtrip_in_batch() {
        let td = TempDir::new().unwrap();
        let entry = blocks_entry(&td);
        let arr = VertexArray::<f32>::new("dist");
        let batch = VertexRange::new(4, 7);
        let mut ctx = BatchCtx::load(&[&entry], batch, 1, 0, None).unwrap();
        assert_eq!(ctx.get(&arr, 5), 0.0);
        ctx.set(&arr, 5, 2.5);
        assert_eq!(ctx.get(&arr, 5), 2.5);
        ctx.write_back(1).unwrap();
        // reload sees the persisted value
        let mut ctx2 = BatchCtx::load(&[&entry], batch, 1, 0, None).unwrap();
        assert_eq!(ctx2.get(&arr, 5), 2.5);
        assert_eq!(ctx2.get(&arr, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong element type")]
    fn type_confusion_caught() {
        let td = TempDir::new().unwrap();
        let entry = blocks_entry(&td);
        let wrong = VertexArray::<u64>::new("dist");
        let mut ctx = BatchCtx::load(&[&entry], VertexRange::new(0, 4), 0, 0, None).unwrap();
        let _ = ctx.get(&wrong, 0);
    }

    #[test]
    #[should_panic(expected = "not listed")]
    fn unlisted_array_caught() {
        let td = TempDir::new().unwrap();
        let entry = blocks_entry(&td);
        let other = VertexArray::<f32>::new("rank");
        let mut ctx = BatchCtx::load(&[&entry], VertexRange::new(0, 4), 0, 0, None).unwrap();
        let _ = ctx.get(&other, 0);
    }

    #[test]
    fn paged_backend_get_set() {
        let td = TempDir::new().unwrap();
        let disk = NodeDisk::new(td.path(), None, false).unwrap();
        let partition = VertexRange::new(10, 110);
        let entry = ArrayEntry::create_paged(&disk, "val", 8, partition, 64, 2).unwrap();
        let arr = VertexArray::<u64>::new("val");
        {
            let mut ctx = BatchCtx::load(&[&entry], partition, 0, 10, None).unwrap();
            for v in 10..110 {
                ctx.set(&arr, v, v * 3);
            }
            for v in (10..110).rev() {
                assert_eq!(ctx.get(&arr, v), v * 3);
            }
        }
        entry.commit().unwrap(); // flush pages
    }

    #[test]
    fn preloaded_bytes_are_reused() {
        let td = TempDir::new().unwrap();
        let entry = blocks_entry(&td);
        let arr = VertexArray::<f32>::new("dist");
        // hand the loader fabricated bytes: it must use them, not re-read
        let fake = bytes_of(&7.0f32).iter().copied().cycle().take(16).collect::<Vec<u8>>();
        let mut ctx =
            BatchCtx::load(&[&entry], VertexRange::new(0, 4), 0, 0, Some(("dist", fake))).unwrap();
        assert_eq!(ctx.get(&arr, 2), 7.0);
    }
}
