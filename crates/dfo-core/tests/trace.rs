//! Flight-recorder tracing through the engine: a traced 2-node run writes
//! one merged timeline with all four pipeline phases on every rank, span
//! nesting is well-formed per (pid, tid), and network telemetry
//! accumulates across runs instead of resetting (the supervised-restart
//! regression).

use dfo_core::Cluster;
use dfo_graph::edge::EdgeList;
use dfo_graph::gen::{rmat, GenConfig};
use dfo_types::{BatchPolicy, EngineConfig};
use tempfile::TempDir;

fn cfg(nodes: usize) -> EngineConfig {
    let mut c = EngineConfig::for_test(nodes);
    c.batch_policy = BatchPolicy::FixedVertices(64);
    c
}

fn graph() -> EdgeList<()> {
    rmat(GenConfig::new(9, 6, 5))
}

/// One accumulate-in-degrees iteration per call (PageRank-shaped push).
fn run_once(cluster: &Cluster, iters: usize) {
    cluster
        .run(|ctx| {
            let acc = ctx.vertex_array::<u64>("acc")?;
            for _ in 0..iters {
                let a = acc.clone();
                ctx.process_edges(
                    &[],
                    &["acc"],
                    None,
                    |_v, _c| Some(1u64),
                    move |m: u64, _s, d, _e: &(), cx| {
                        let cur = cx.get(&a, d);
                        cx.set(&a, d, cur + m);
                        0u64
                    },
                )?;
            }
            Ok(())
        })
        .unwrap();
}

/// A traced sim-cluster run produces a Chrome trace holding all four
/// pipeline phases for **both** ranks, plus the call-level span, and every
/// (pid, tid) lane is well-formed: sorted by start, and any two spans on a
/// lane either nest or are disjoint.
#[test]
fn two_rank_trace_covers_all_phases_and_nests() {
    let td = TempDir::new().unwrap();
    let trace_path = td.path().join("run.trace.json");
    let mut c = cfg(2);
    c.trace_path = Some(trace_path.to_string_lossy().into_owned());

    let cluster = Cluster::create(c, td.path().join("data")).unwrap();
    cluster.preprocess(&graph()).unwrap();
    run_once(&cluster, 2);

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let events = dfo_obs::parse_trace(&text).expect("trace file parses");
    let mut pids: Vec<u64> = events.iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids, [0, 1], "merged timeline must carry both ranks: {pids:?}");

    for pid in pids {
        let spans: Vec<_> = events.iter().filter(|e| e.pid == pid).collect();
        assert!(!spans.is_empty(), "rank {pid} recorded no spans");
        for phase in
            ["phase1_generate", "phase2_pass", "phase3_dispatch", "phase4_process", "process_edges"]
        {
            assert!(
                spans.iter().any(|s| s.name == phase),
                "rank {pid} trace is missing span {phase:?}"
            );
        }

        // Per (pid, tid) lane: any two spans either nest or are disjoint.
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let mut lane: Vec<_> = spans.iter().filter(|s| s.tid == tid).collect();
            lane.sort_by_key(|s| (s.ts_ns, std::cmp::Reverse(s.dur_ns)));
            for (i, a) in lane.iter().enumerate() {
                for b in &lane[i + 1..] {
                    let nested = b.end_ns() <= a.end_ns();
                    let disjoint = b.ts_ns >= a.end_ns();
                    assert!(
                        nested || disjoint,
                        "rank {pid} tid {tid}: {:?} and {:?} partially overlap",
                        a.name,
                        b.name
                    );
                }
            }
        }
    }
}

/// `net_totals()` accumulates across runs: after a second run every rank's
/// totals are strictly above the first run's, and the last-run window
/// (`net_stats()`) stays a per-run view — the exact regression where a
/// supervised restart zeroed network telemetry.
#[test]
fn net_totals_accumulate_across_runs() {
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(2), td.path()).unwrap();
    cluster.preprocess(&graph()).unwrap();

    run_once(&cluster, 1);
    let after_one = cluster.net_totals();
    let window_one: Vec<u64> = cluster.net_stats().iter().map(|s| s.sent_bytes.get()).collect();
    assert!(
        after_one.iter().any(|t| t.sent_bytes > 0),
        "a 2-rank push run must ship bytes: {after_one:?}"
    );

    run_once(&cluster, 1);
    let after_two = cluster.net_totals();
    let window_two: Vec<u64> = cluster.net_stats().iter().map(|s| s.sent_bytes.get()).collect();

    for (rank, (t1, t2)) in after_one.iter().zip(&after_two).enumerate() {
        assert!(
            t2.sent_bytes > t1.sent_bytes,
            "rank {rank}: totals must grow across runs ({} -> {})",
            t1.sent_bytes,
            t2.sent_bytes
        );
        assert!(t2.recv_bytes > t1.recv_bytes);
        assert!(t2.sent_frames > t1.sent_frames);
    }
    // identical workloads: the accumulated totals are the sum of the two
    // per-run windows, byte for byte
    for (rank, t2) in after_two.iter().enumerate() {
        assert_eq!(
            t2.sent_bytes,
            window_one[rank] + window_two[rank],
            "rank {rank}: totals must equal the sum of per-run windows"
        );
    }
}

/// The registry's pull sources surface engine counters after a run: disk
/// bytes, chunk-cache traffic and accumulated network bytes all appear in
/// a snapshot with the cluster's rank labels.
#[test]
fn registry_snapshot_carries_engine_counters() {
    let td = TempDir::new().unwrap();
    let registry = dfo_obs::Registry::new();
    let mut c = cfg(2);
    c.chunk_cache_bytes = 4 << 20;
    let cluster =
        Cluster::create_with_registry(c, td.path(), registry.clone(), &[("graph", "t")]).unwrap();
    cluster.preprocess(&graph()).unwrap();
    run_once(&cluster, 3);

    let snap = registry.snapshot();
    for family in [
        "dfo_disk_read_bytes_total",
        "dfo_disk_write_bytes_total",
        "dfo_chunk_cache_hits_total",
        "dfo_net_sent_bytes_total",
    ] {
        let series = snap.series(family);
        assert_eq!(series.len(), 2, "{family}: one series per rank, got {}", series.len());
        let total: u64 = series.iter().filter_map(|s| s.value.as_counter()).sum();
        assert!(total > 0, "{family} must be non-zero after a cached 3-iteration run");
        assert!(
            series.iter().all(|s| s.labels.iter().any(|(k, v)| k == "graph" && v == "t")),
            "{family} series must carry the graph label"
        );
    }
}
