//! Chaos testing for crash consistency: ranks are SIGKILLed at scheduled
//! commit boundaries (`DFO_CRASH_AT` schedules — multiple points, pre/mid
//! positions, per-rank, per-epoch), the [`Supervisor`] relaunches them
//! under its *published* epoch, and every run must end with final PageRank
//! bytes **bit-identical** to an uninterrupted run.
//!
//! Three deterministic scenarios pin down the hard cases — two ranks dying
//! in one recovery window, an *ahead* rank that committed a call its peer
//! lost (rolled back via the per-call commit records), and a kill after
//! the final call — then a seeded randomized sweep samples whole schedules
//! (`DFO_CHAOS_SEED`, `DFO_CHAOS_SCHEDULES`). Set `DFO_CHAOS_LOG_DIR` to
//! keep per-attempt resume logs on disk (CI uploads them on failure).
//!
//! Same re-exec harness as `restart.rs`: `child_entry` is a no-op under
//! plain `cargo test` and one supervised rank when `DFO_CHAOS_ROLE` is set.

use dfo_core::{Cluster, NodeCtx, Supervisor};
use dfo_graph::gen::uniform;
use dfo_types::{BatchPolicy, EngineConfig, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;
use tempfile::TempDir;

const ROLE_ENV: &str = "DFO_CHAOS_ROLE";
const ITERS: u64 = 4;
const DAMPING: f64 = 0.85;
/// Calls of a fresh run: 0 = resume scan, 1 = init, round `it` = calls
/// `2+3it` / `3+3it` / `4+3it` (clear / edges / apply+marker), 14 = the
/// final readback. A resumed run renumbers from 0 (scan, then straight to
/// the resume round), which is why post-recovery kill points carry an
/// `@epoch` qualifier instead of assuming fresh-run numbering.
const LAST_CALL: u64 = 2 + 3 * ITERS;

fn dist_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::for_test(2);
    cfg.checkpointing = true;
    cfg.checkpoints_kept = 2;
    cfg.batch_policy = BatchPolicy::FixedVertices(32);
    cfg.connect_timeout_secs = 60;
    cfg
}

fn dist_graph() -> dfo_graph::EdgeList<()> {
    uniform(128, 800, 11)
}

fn out_degrees(g: &dfo_graph::EdgeList<()>) -> Vec<u64> {
    let mut deg = vec![0u64; g.n_vertices as usize];
    for e in &g.edges {
        deg[e.src as usize] += 1;
    }
    deg
}

/// Checkpoint-aware push PageRank (§3.2 recovery discipline); same program
/// as `restart.rs` so both harnesses exercise identical commit boundaries.
fn ckpt_pagerank(ctx: &mut NodeCtx, degrees: &[u64], resume_log: &Path) -> Result<Vec<f64>> {
    let n = ctx.plan().n_vertices as f64;
    let rank_arr = ctx.vertex_array::<f64>("pr_rank")?;
    let next_arr = ctx.vertex_array::<f64>("pr_next")?;
    let deg_arr = ctx.vertex_array::<u64>("pr_deg")?;
    let round_arr = ctx.vertex_array::<u64>("pr_round")?;

    let r0 = ctx.committed_round("pr_round")?; // call 0
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(resume_log)
        .expect("open resume log");
    writeln!(log, "{r0}").expect("write resume log");

    if r0 == 0 {
        let (r, d) = (rank_arr.clone(), deg_arr.clone());
        let degrees = degrees.to_vec();
        ctx.process_vertices(&["pr_rank", "pr_deg"], None, move |v, c| {
            c.set(&r, v, 1.0 / n);
            c.set(&d, v, degrees[v as usize]);
            0u64
        })?;
    }
    for it in r0..ITERS {
        {
            let nx = next_arr.clone();
            ctx.process_vertices(&["pr_next"], None, move |v, c| {
                c.set(&nx, v, 0.0);
                0u64
            })?;
        }
        {
            let (r, d, nx) = (rank_arr.clone(), deg_arr.clone(), next_arr.clone());
            ctx.process_edges(
                &["pr_rank", "pr_deg"],
                &["pr_next"],
                None,
                move |v, c| {
                    let dv = c.get(&d, v);
                    if dv == 0 {
                        None
                    } else {
                        Some(c.get(&r, v) / dv as f64)
                    }
                },
                move |msg: f64, _s, dst, _e: &(), c| {
                    let cur = c.get(&nx, dst);
                    c.set(&nx, dst, cur + msg);
                    0u64
                },
            )?;
        }
        {
            let (r, nx, rd) = (rank_arr.clone(), next_arr.clone(), round_arr.clone());
            ctx.process_vertices(&["pr_rank", "pr_next", "pr_round"], None, move |v, c| {
                let s = c.get(&nx, v);
                c.set(&r, v, (1.0 - DAMPING) / n + DAMPING * s);
                c.set(&rd, v, it + 1);
                0u64
            })?;
        }
    }
    let range = ctx.plan().partitions[ctx.rank()];
    let mut out = vec![0f64; range.len() as usize];
    let h = rank_arr.clone();
    let sink = std::sync::Mutex::new(&mut out);
    ctx.process_vertices(&["pr_rank"], None, |v, c| {
        let val = c.get(&h, v);
        sink.lock().unwrap()[(v - range.start) as usize] = val;
        0u64
    })?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// worker side

/// No-op under plain `cargo test`; one supervised rank when the role env
/// var is set. On success it also dumps this process's recovery stats and
/// a rendered metrics scrape, so the parent can assert restart/rollback
/// accounting end to end.
#[test]
fn child_entry() {
    if std::env::var(ROLE_ENV).is_err() {
        return;
    }
    let rank = EngineConfig::env_rank().expect("DFO_RANK");
    let base = PathBuf::from(std::env::var("DFO_BASE").expect("DFO_BASE"));
    let mut cfg = dist_cfg();
    cfg.apply_env_overrides(); // peers, epoch, epoch file, crash schedule…
    assert!(cfg.peers.is_some(), "worker needs DFO_PEERS");
    let degrees = out_degrees(&dist_graph());
    let cluster = Cluster::create(cfg, &base).expect("reopen cluster");
    let resume_log = base.join(format!("resume_r{rank}.log"));
    let res = cluster.run_supervised(rank, |ctx| ckpt_pagerank(ctx, &degrees, &resume_log));
    let code = match res {
        Ok(slice) => {
            let bytes: Vec<u8> = slice.iter().flat_map(|v| v.to_le_bytes()).collect();
            std::fs::write(base.join(format!("out_r{rank}.bin")), bytes).expect("write slice");
            let st = cluster.recovery_stats();
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(base.join(format!("stats_r{rank}.log")))
                .expect("open stats log");
            writeln!(
                f,
                "restarts={} mesh_epoch={} rollbacks={}",
                st.restarts, st.mesh_epoch, st.rollbacks
            )
            .expect("write stats");
            std::fs::write(
                base.join(format!("metrics_r{rank}.txt")),
                cluster.registry().snapshot().to_prometheus(),
            )
            .expect("write metrics");
            0
        }
        Err(e) => {
            eprintln!("supervised rank {rank} failed: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// parent side

fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect()
}

/// A per-case working directory: a tempdir normally, or a named directory
/// under `DFO_CHAOS_LOG_DIR` so resume logs survive for CI artifacts.
struct CaseDir {
    _tmp: Option<TempDir>,
    path: PathBuf,
}

fn case_dir(name: &str) -> CaseDir {
    match std::env::var("DFO_CHAOS_LOG_DIR") {
        Ok(root) if !root.is_empty() => {
            let path = PathBuf::from(root).join(name);
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create chaos log dir");
            CaseDir { _tmp: None, path }
        }
        _ => {
            let tmp = TempDir::new().unwrap();
            CaseDir { path: tmp.path().to_path_buf(), _tmp: Some(tmp) }
        }
    }
}

/// Runs a full supervised 2-rank job over `base` with a crash schedule.
/// Unlike `restart.rs` this harness *re-sets* `DFO_CRASH_AT` on relaunches
/// (after `configure` scrubs it), so multi-kill schedules stay armed across
/// incarnations — their `@epoch` qualifiers keep fired points from
/// refiring — and the supervisor publishes its epoch to `<base>/EPOCH`.
fn supervise(base: &Path, schedule: &str, max_restarts: u32) -> dfo_core::SuperviseReport {
    let peers = free_addrs(2);
    let sup = Supervisor::new(peers.clone(), max_restarts)
        .with_deadline(Duration::from_secs(180))
        .with_epoch_file(base.join("EPOCH"));
    sup.run(|spec| {
        let mut cmd = Command::new(std::env::current_exe().unwrap());
        cmd.args(["child_entry", "--exact", "--test-threads=1", "--nocapture"])
            .env(ROLE_ENV, "supervised")
            .env("DFO_BASE", base);
        spec.configure(&mut cmd, &peers, max_restarts, sup.epoch_file());
        if schedule.is_empty() {
            cmd.env_remove("DFO_CRASH_AT");
        } else {
            cmd.env("DFO_CRASH_AT", schedule);
        }
        cmd.spawn()
    })
    .unwrap_or_else(|e| panic!("supervised job (schedule {schedule:?}): {e}"))
}

/// Preprocesses a fresh copy of the shared test graph under `base`.
fn prepare(base: &Path) {
    let cluster = Cluster::create(dist_cfg(), base).unwrap();
    cluster.preprocess(&dist_graph()).unwrap();
}

fn read_outputs(base: &Path) -> Vec<Vec<u8>> {
    (0..2)
        .map(|rank| {
            let p = base.join(format!("out_r{rank}.bin"));
            let b = std::fs::read(&p).unwrap_or_else(|e| panic!("read {p:?}: {e}"));
            assert!(!b.is_empty() && b.len().is_multiple_of(8), "bad output {p:?}");
            b
        })
        .collect()
}

fn read_resume_log(base: &Path, rank: usize) -> Vec<u64> {
    std::fs::read_to_string(base.join(format!("resume_r{rank}.log")))
        .expect("resume log")
        .lines()
        .map(|l| l.trim().parse().expect("resume round"))
        .collect()
}

/// The value of metric `family` in a rank's dumped Prometheus scrape.
fn scraped_value(base: &Path, rank: usize, family: &str) -> f64 {
    let text =
        std::fs::read_to_string(base.join(format!("metrics_r{rank}.txt"))).expect("metrics dump");
    text.lines()
        .find(|l| l.starts_with(family) && !l.starts_with('#'))
        .unwrap_or_else(|| panic!("{family} missing from rank {rank} scrape"))
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .expect("metric value")
}

/// An uninterrupted reference run; returns the per-rank output bytes.
fn clean_reference(base: &Path) -> Vec<Vec<u8>> {
    prepare(base);
    let report = supervise(base, "", 0);
    assert_eq!(report.restarts, 0, "clean run must not restart: {report:?}");
    read_outputs(base)
}

#[test]
fn overlapping_rank_deaths_converge_on_the_published_epoch() {
    let clean = case_dir("overlap-clean");
    let reference = clean_reference(&clean.path);

    // Both ranks die at the same pre-commit boundary of round 2's clear
    // call — a process_vertices call with no in-call communication, so
    // both deterministically reach the crash point. Two failures in one
    // recovery window: exactly what the supervisor's published epoch
    // exists to untangle.
    let case = case_dir("overlap-crash");
    prepare(&case.path);
    let report = supervise(&case.path, "8:0@0,8:1@0", 4);
    assert_eq!(report.restarts, 2, "both ranks must be relaunched: {report:?}");
    let mut relaunched: Vec<usize> = report.relaunches.iter().map(|(r, _)| *r).collect();
    relaunched.sort_unstable();
    assert_eq!(relaunched, vec![0, 1]);
    let published: u64 = std::fs::read_to_string(case.path.join("EPOCH"))
        .expect("published epoch file")
        .trim()
        .parse()
        .expect("published epoch");
    assert!(published >= 1, "supervisor must have bumped the published epoch");
    for (rank, epoch) in &report.relaunches {
        assert!(*epoch <= published, "rank {rank} relaunched past the published epoch");
    }

    assert_eq!(read_outputs(&case.path), reference, "recovered output differs from clean run");
    for rank in 0..2 {
        assert_eq!(
            read_resume_log(&case.path, rank),
            vec![0, 2],
            "rank {rank}: want a fresh start, then a resume at round 2"
        );
    }
}

#[test]
fn ahead_rank_rolls_back_one_call_and_matches_clean_run() {
    let clean = case_dir("ahead-clean");
    let reference = clean_reference(&clean.path);

    // Rank 1 dies at the pre-commit boundary of round 2's apply call
    // (call 10). The apply is communication-free until its call-ending
    // allreduce, so rank 0 deterministically commits call 10 *and its
    // commit record* before observing the failure: rank 0 is now one call
    // ahead of what rank 1 can recover. The commit-seq exchange at
    // recovery must roll rank 0 back one checkpoint.
    let case = case_dir("ahead-crash");
    prepare(&case.path);
    let report = supervise(&case.path, "10:1@0", 4);
    assert_eq!(report.restarts, 1, "exactly one relaunch: {report:?}");
    assert_eq!(report.relaunches, vec![(1, 1)]);

    assert_eq!(read_outputs(&case.path), reference, "recovered output differs from clean run");
    for rank in 0..2 {
        assert_eq!(read_resume_log(&case.path, rank), vec![0, 2], "rank {rank} resume");
    }

    // rank 0's process lived through the recovery: its stats and scrape
    // must show the rollback and the restart
    let stats = std::fs::read_to_string(case.path.join("stats_r0.log")).expect("rank 0 stats");
    assert!(
        stats.contains("restarts=1") && stats.contains("rollbacks=1"),
        "rank 0 must report 1 restart and 1 rollback, got: {stats:?}"
    );
    assert_eq!(scraped_value(&case.path, 0, "dfo_restarts_total"), 1.0);
    assert_eq!(scraped_value(&case.path, 0, "dfo_rollbacks_total"), 1.0);
    assert_eq!(scraped_value(&case.path, 0, "dfo_mesh_epoch"), 1.0);
}

#[test]
fn post_final_call_kill_recovers_and_matches_clean_run() {
    let clean = case_dir("tail-clean");
    let reference = clean_reference(&clean.path);

    // Rank 1 dies after every round has committed, at the boundary of the
    // final readback call: recovery resumes past the loop entirely and
    // only re-runs the readback.
    let case = case_dir("tail-crash");
    prepare(&case.path);
    let report = supervise(&case.path, &format!("{LAST_CALL}:1@0"), 4);
    assert_eq!(report.restarts, 1, "exactly one relaunch: {report:?}");
    assert_eq!(read_outputs(&case.path), reference, "recovered output differs from clean run");
    for rank in 0..2 {
        assert_eq!(
            read_resume_log(&case.path, rank),
            vec![0, ITERS],
            "rank {rank}: want a resume past the final committed round"
        );
    }
}

/// One sampled crash schedule: 1–2 kill points across ranks, positions
/// and epochs. Points may legitimately never fire (the mesh can die before
/// a rank reaches its call) — the invariant under test is that *whatever*
/// subset fires, the job completes with bit-identical output.
fn sample_schedule(rng: &mut SmallRng) -> String {
    let mut points = Vec::new();
    let call = rng.gen_range(1..LAST_CALL + 1);
    let pos = if rng.gen_range(0..2u32) == 0 { "" } else { ".mid" };
    let rank = rng.gen_range(0..2u32);
    points.push(format!("{call}{pos}:{rank}@0"));
    if rng.gen_range(0..2u32) == 0 {
        if rng.gen_range(0..2u32) == 0 {
            // concurrent: the *other* rank dies at the same boundary
            points.push(format!("{call}:{}@0", 1 - rank));
        } else {
            // staggered: a second kill after the first recovery (resumed
            // runs renumber calls from 0, hence the small range)
            let call2 = rng.gen_range(1..8u64);
            let rank2 = rng.gen_range(0..2u32);
            points.push(format!("{call2}:{rank2}@1"));
        }
    }
    points.join(",")
}

#[test]
fn randomized_kill_schedules_stay_bit_identical() {
    let seed: u64 =
        std::env::var("DFO_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xDF0_C4A0);
    let schedules: usize =
        std::env::var("DFO_CHAOS_SCHEDULES").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let mut rng = SmallRng::seed_from_u64(seed);

    let clean = case_dir("rand-clean");
    let reference = clean_reference(&clean.path);

    for i in 0..schedules {
        let schedule = sample_schedule(&mut rng);
        eprintln!("[chaos] schedule {i}/{schedules} (seed {seed:#x}): {schedule}");
        let case = case_dir(&format!("rand-{i}"));
        prepare(&case.path);
        let report = supervise(&case.path, &schedule, 8);
        // the first point always targets epoch 0 of a fresh run, so at
        // least one kill must have fired
        assert!(report.restarts >= 1, "schedule {schedule:?} fired no kills: {report:?}");
        assert_eq!(
            read_outputs(&case.path),
            reference,
            "schedule {schedule:?}: recovered output differs from clean run"
        );
    }
}
