//! Chunk compression through the engine: physical reads shrink while
//! logical reads (and results) stay put, the off switch reproduces the
//! uncompressed layout byte-for-byte, and a stale-config mismatch (seek
//! mode meeting a compressed file) degrades to a correct full load.

use dfo_core::Cluster;
use dfo_graph::edge::EdgeList;
use dfo_graph::gen::{rmat, GenConfig};
use dfo_part::preprocess::paths;
use dfo_types::{BatchPolicy, EngineConfig, PhaseStats};
use tempfile::TempDir;

fn cfg(compress: bool) -> EngineConfig {
    let mut c = EngineConfig::for_test(2);
    c.batch_policy = BatchPolicy::FixedVertices(64);
    c.compress_chunks = compress;
    c
}

fn graph() -> EdgeList<()> {
    rmat(GenConfig::new(9, 6, 5))
}

struct RunOut {
    values: Vec<u64>,
    stats: PhaseStats,
    /// Cluster-wide physical disk reads during the run (preprocessing
    /// excluded).
    physical_read: u64,
    /// Cluster-wide logical disk reads during the run.
    logical_read: u64,
}

/// One full-frontier push iteration; returns per-vertex sums in rank order,
/// the cluster-merged [`PhaseStats`], and raw disk-counter deltas.
fn push_once(cfg: EngineConfig, g: &EdgeList<()>, base: &std::path::Path) -> RunOut {
    let cluster = Cluster::create(cfg, base).unwrap();
    cluster.preprocess(g).unwrap();
    let before: Vec<(u64, u64)> = cluster
        .disks()
        .iter()
        .map(|d| (d.stats().read_bytes.get(), d.stats().logical_read_bytes.get()))
        .collect();
    let per_node = cluster
        .run(|ctx| {
            let acc = ctx.vertex_array::<u64>("acc")?;
            let a = acc.clone();
            ctx.process_edges(
                &[],
                &["acc"],
                None,
                |_v, _c| Some(1u64),
                move |m: u64, _s, d, _e: &(), cx| {
                    let cur = cx.get(&a, d);
                    cx.set(&a, d, cur + m);
                    0u64
                },
            )?;
            let stats = ctx.last_phase_stats().clone();
            let r = ctx.plan().partitions[ctx.rank()];
            let out = std::sync::Mutex::new(vec![0u64; r.len() as usize]);
            let a = acc.clone();
            ctx.process_vertices(&["acc"], None, |v, c| {
                out.lock().unwrap()[(v - r.start) as usize] = c.get(&a, v);
                0u64
            })?;
            Ok((out.into_inner().unwrap(), stats))
        })
        .unwrap();
    let mut values = Vec::new();
    let mut merged = PhaseStats::default();
    for (vals, stats) in per_node {
        values.extend(vals);
        merged.merge(&stats);
    }
    let (mut physical_read, mut logical_read) = (0u64, 0u64);
    for (disk, (r0, l0)) in cluster.disks().iter().zip(before) {
        physical_read += disk.stats().read_bytes.get() - r0;
        logical_read += disk.stats().logical_read_bytes.get() - l0;
    }
    RunOut { values, stats: merged, physical_read, logical_read }
}

#[test]
fn compressed_runs_read_fewer_physical_bytes_than_logical() {
    let g = graph();
    let td = TempDir::new().unwrap();
    let on = push_once(cfg(true), &g, &td.path().join("on"));
    let off = push_once(cfg(false), &g, &td.path().join("off"));
    assert_eq!(on.values, off.values, "compression must not change results");

    // the actual win: cold chunk reads cost fewer physical bytes
    assert!(
        on.stats.process_disk_read < off.stats.process_disk_read,
        "compressed cold reads {} must undercut uncompressed {}",
        on.stats.process_disk_read,
        off.stats.process_disk_read
    );
    assert!(
        on.physical_read < off.physical_read,
        "whole-run physical reads: compressed {} vs raw {}",
        on.physical_read,
        off.physical_read
    );
    // logical bytes are layout-independent: both runs served the pipeline
    // the same decoded stream (and the same message/array traffic)
    assert_eq!(on.logical_read, off.logical_read, "logical reads must not depend on layout");
    assert_eq!(
        on.stats.logical_disk_read, off.stats.logical_disk_read,
        "per-call logical reads must not depend on layout"
    );
    // compressed: the pipeline consumed more bytes than the device served
    assert!(
        on.logical_read > on.physical_read,
        "decoded bytes {} must exceed physical frames {}",
        on.logical_read,
        on.physical_read
    );
    // uncompressed: the device never serves fewer bytes than the consumer
    // sees (buffered read-ahead can only make physical ≥ logical)
    assert!(
        off.logical_read <= off.physical_read,
        "raw runs cannot consume more than they read: logical {} physical {}",
        off.logical_read,
        off.physical_read
    );
}

#[test]
fn compress_off_reproduces_the_legacy_layout() {
    let g = graph();
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(false), td.path()).unwrap();
    let plan = cluster.preprocess(&g).unwrap();
    // every chunk file must carry the raw "DFOC" magic and decode to
    // exactly its serialized size — the pre-compression on-disk format
    for (i, disk) in cluster.disks().iter().enumerate() {
        for c in &plan.node_meta[i].chunks {
            let rel = paths::chunk(c.src_partition, c.batch);
            let bytes = disk.read_to_vec(&rel).unwrap();
            assert_eq!(&bytes[0..4], &0x4446_4F43u32.to_le_bytes(), "{rel} must start with DFOC");
        }
    }
}

#[test]
fn compressed_files_carry_the_frame_magic() {
    let g = graph();
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg(true), td.path()).unwrap();
    let plan = cluster.preprocess(&g).unwrap();
    let mut physical = 0u64;
    for (i, disk) in cluster.disks().iter().enumerate() {
        for c in &plan.node_meta[i].chunks {
            let rel = paths::chunk(c.src_partition, c.batch);
            let bytes = disk.read_to_vec(&rel).unwrap();
            assert_eq!(
                &bytes[0..4],
                &dfo_storage::FRAME_MAGIC.to_le_bytes(),
                "{rel} must start with the frame magic"
            );
            physical += bytes.len() as u64;
        }
    }
    // the same graph preprocessed uncompressed must occupy more chunk bytes
    let td2 = TempDir::new().unwrap();
    let cluster2 = Cluster::create(cfg(false), td2.path()).unwrap();
    let plan2 = cluster2.preprocess(&g).unwrap();
    let mut raw = 0u64;
    for (i, disk) in cluster2.disks().iter().enumerate() {
        for c in &plan2.node_meta[i].chunks {
            raw += disk.len(&paths::chunk(c.src_partition, c.batch)).unwrap();
        }
    }
    assert!(physical < raw, "compressed chunk bytes {physical} vs raw {raw}");
}

/// Preprocess with compression on, run with it off: the engine may pick
/// seek mode, meet a compressed file, and must fall back to a full load —
/// same results, no panic.
#[test]
fn stale_config_mismatch_falls_back_to_full_loads() {
    let g = graph();
    let td = TempDir::new().unwrap();
    let baseline = push_once(cfg(false), &g, &td.path().join("base")).values;

    let dir = td.path().join("mismatch");
    {
        let cluster = Cluster::create(cfg(true), &dir).unwrap();
        cluster.preprocess(&g).unwrap();
    }
    // reopen the same preprocessed data with compression off and a tiny
    // gamma so the seek heuristic is eager
    let mut stale = cfg(false);
    stale.gamma = 1;
    let cluster = Cluster::create(stale, &dir).unwrap();
    let per_node = cluster
        .run(|ctx| {
            let acc = ctx.vertex_array::<u64>("acc")?;
            let a = acc.clone();
            ctx.process_edges(
                &[],
                &["acc"],
                None,
                |_v, _c| Some(1u64),
                move |m: u64, _s, d, _e: &(), cx| {
                    let cur = cx.get(&a, d);
                    cx.set(&a, d, cur + m);
                    0u64
                },
            )?;
            let r = ctx.plan().partitions[ctx.rank()];
            let out = std::sync::Mutex::new(vec![0u64; r.len() as usize]);
            let a = acc.clone();
            ctx.process_vertices(&["acc"], None, |v, c| {
                out.lock().unwrap()[(v - r.start) as usize] = c.get(&a, v);
                0u64
            })?;
            Ok(out.into_inner().unwrap())
        })
        .unwrap();
    let vals: Vec<u64> = per_node.into_iter().flatten().collect();
    assert_eq!(vals, baseline);
}
