//! End-to-end engine tests: the full four-phase pipeline against
//! brute-force oracles, across cluster sizes, batch sizes, dispatch
//! strategies and representations.

use dfo_core::Cluster;
use dfo_graph::edge::{Edge, EdgeList};
use dfo_graph::gen::{rmat, uniform, GenConfig};
use dfo_types::{BatchPolicy, DispatchKind, EngineConfig, ReprKind, VertexId};
use tempfile::TempDir;

/// In-degree via the engine: every vertex signals 1 along out-edges.
fn engine_in_degrees(cfg: EngineConfig, g: &EdgeList<()>) -> Vec<u64> {
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    let plan = cluster.preprocess(g).unwrap();
    let results = cluster
        .run(|ctx| {
            let deg = ctx.vertex_array::<u64>("deg")?;
            ctx.process_edges(
                &[],
                &["deg"],
                None,
                |_v, _c| Some(1u64),
                |msg, _s, dst, _d: &(), c| {
                    let cur = c.get(&deg, dst);
                    c.set(&deg, dst, cur + msg);
                    1u64
                },
            )?;
            // read the array back out for verification
            let r = ctx.plan().partitions[ctx.rank()];
            let mut out = vec![0u64; r.len() as usize];
            let handle = deg.clone();
            ctx.process_vertices(&["deg"], None, |v, c| {
                // collected below via a second pass; here just touch
                let _ = c.get(&handle, v);
                0u64
            })?;
            // direct read through a per-batch sweep
            let deg2 = deg.clone();
            let collected = std::sync::Mutex::new(&mut out);
            ctx.process_vertices(&["deg"], None, |v, c| {
                let val = c.get(&deg2, v);
                collected.lock().unwrap()[(v - r.start) as usize] = val;
                0u64
            })?;
            Ok(out)
        })
        .unwrap();
    assert_eq!(plan.nodes(), results.len());
    results.into_iter().flatten().collect()
}

fn brute_in_degrees(g: &EdgeList<()>) -> Vec<u64> {
    let mut d = vec![0u64; g.n_vertices as usize];
    for e in &g.edges {
        d[e.dst as usize] += 1;
    }
    d
}

#[test]
fn in_degrees_match_on_figure1_graph() {
    let g = EdgeList::new(
        7,
        vec![
            Edge::new(0, 5, ()),
            Edge::new(0, 6, ()),
            Edge::new(1, 2, ()),
            Edge::new(2, 4, ()),
            Edge::new(2, 5, ()),
            Edge::new(4, 3, ()),
            Edge::new(5, 0, ()),
            Edge::new(5, 4, ()),
            Edge::new(6, 5, ()),
        ],
    );
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(2);
    assert_eq!(engine_in_degrees(cfg, &g), brute_in_degrees(&g));
}

#[test]
fn in_degrees_match_on_rmat_various_cluster_sizes() {
    let g = rmat(GenConfig::new(9, 6, 11));
    let want = brute_in_degrees(&g);
    for nodes in [1, 2, 3, 5] {
        let mut cfg = EngineConfig::for_test(nodes);
        cfg.batch_policy = BatchPolicy::FixedVertices(37);
        assert_eq!(engine_in_degrees(cfg, &g), want, "nodes={nodes}");
    }
}

#[test]
fn in_degrees_match_without_filtering() {
    let g = uniform(300, 2000, 3);
    let want = brute_in_degrees(&g);
    let mut cfg = EngineConfig::for_test(3);
    cfg.filtering_enabled = false;
    assert_eq!(engine_in_degrees(cfg, &g), want);
}

/// Regression for the `micro_filter` bench bug: with the §4.3 skip rule out
/// of the way, an engaged filter must actually move fewer wire bytes than
/// no filtering, while producing the same answer. (A sparse uniform graph
/// guarantees most sources lack edges to most partitions, so the filter
/// lists have something to drop.)
#[test]
fn engaged_filtering_reduces_wire_bytes() {
    let g = uniform(400, 700, 9);
    let want = brute_in_degrees(&g);
    let mut bytes_by_mode = Vec::new();
    for filtering in [true, false] {
        let mut cfg = EngineConfig::for_test(3);
        cfg.batch_policy = BatchPolicy::FixedVertices(64);
        cfg.filtering_enabled = filtering;
        cfg.filter_skip_ratio = f64::INFINITY; // never skip: always engage
        let td = TempDir::new().unwrap();
        let cluster = Cluster::create(cfg, td.path()).unwrap();
        cluster.preprocess(&g).unwrap();
        let results = cluster
            .run(|ctx| {
                let deg = ctx.vertex_array::<u64>("deg")?;
                ctx.process_edges(
                    &[],
                    &["deg"],
                    None,
                    |_v, _c| Some(1u64),
                    |msg, _s, dst, _d: &(), c| {
                        let cur = c.get(&deg, dst);
                        c.set(&deg, dst, cur + msg);
                        1u64
                    },
                )?;
                let r = ctx.plan().partitions[ctx.rank()];
                let mut out = vec![0u64; r.len() as usize];
                let h = deg.clone();
                let sink = std::sync::Mutex::new(&mut out);
                ctx.process_vertices(&["deg"], None, |v, c| {
                    let val = c.get(&h, v);
                    sink.lock().unwrap()[(v - r.start) as usize] = val;
                    0u64
                })?;
                Ok(out)
            })
            .unwrap();
        let got: Vec<u64> = results.into_iter().flatten().collect();
        assert_eq!(got, want, "filtering={filtering} must not change the answer");
        bytes_by_mode.push(cluster.total_net_sent());
    }
    assert!(
        bytes_by_mode[0] < bytes_by_mode[1],
        "filtering on ({}) must move fewer wire bytes than off ({})",
        bytes_by_mode[0],
        bytes_by_mode[1]
    );
}

#[test]
fn in_degrees_match_under_forced_strategies() {
    let g = uniform(200, 1500, 5);
    let want = brute_in_degrees(&g);
    for kind in [DispatchKind::Push, DispatchKind::Pull, DispatchKind::None] {
        let mut cfg = EngineConfig::for_test(2);
        cfg.dispatch_override = Some(kind);
        assert_eq!(engine_in_degrees(cfg, &g), want, "dispatch {kind:?}");
    }
    for repr in [ReprKind::Csr, ReprKind::Dcsr] {
        let mut cfg = EngineConfig::for_test(2);
        cfg.repr_override = Some(repr);
        assert_eq!(engine_in_degrees(cfg, &g), want, "repr {repr:?}");
    }
}

#[test]
fn in_degrees_match_with_seek_mode_gamma() {
    // gamma=1 makes the engine take the positioned-read CSR seek path for
    // any message count where a CSR exists
    let g = uniform(300, 2500, 21);
    let want = brute_in_degrees(&g);
    let mut cfg = EngineConfig::for_test(2);
    cfg.gamma = 1;
    cfg.batch_policy = BatchPolicy::FixedVertices(32);
    assert_eq!(engine_in_degrees(cfg, &g), want);
}

#[test]
fn sparse_frontier_with_seek_mode_matches() {
    let g = rmat(GenConfig::new(9, 6, 77));
    let mut cfg = EngineConfig::for_test(2);
    cfg.gamma = 2;
    cfg.batch_policy = BatchPolicy::FixedVertices(64);
    // oracle over one-hop frontier of vertex 0
    let expect: u64 = g.edges.iter().filter(|e| e.src == 0).count() as u64;
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let got = cluster
        .run(|ctx| {
            let active = ctx.vertex_array::<bool>("active")?;
            let a = active.clone();
            ctx.process_vertices(&["active"], None, move |v, c| {
                c.set(&a, v, v == 0);
                0u64
            })?;
            ctx.process_edges(
                &[],
                &[],
                Some(&active),
                |_v, _c| Some(1u8),
                |_m: u8, src, _d, _e: &(), _c| {
                    assert_eq!(src, 0);
                    1u64
                },
            )
        })
        .unwrap();
    assert_eq!(got[0], expect);
}

#[test]
fn in_degrees_match_with_tiny_batches_and_many_threads() {
    let g = rmat(GenConfig::new(8, 4, 2));
    let want = brute_in_degrees(&g);
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(3);
    cfg.threads_per_node = 4;
    assert_eq!(engine_in_degrees(cfg, &g), want);
}

/// Weighted SSSP on the engine vs Bellman-Ford, exercising active sets,
/// signal-side writes and multi-iteration convergence — the paper's
/// Figure 2b program almost verbatim.
#[test]
fn sssp_matches_bellman_ford() {
    let base = uniform(150, 900, 17);
    let g: EdgeList<f32> = base.map_data(|e| ((e.src * 7 + e.dst * 13) % 29 + 1) as f32);

    // oracle
    let mut dist = vec![f32::INFINITY; g.n_vertices as usize];
    dist[0] = 0.0;
    for _ in 0..g.n_vertices {
        let mut changed = false;
        for e in &g.edges {
            let nd = dist[e.src as usize] + e.data;
            if nd < dist[e.dst as usize] {
                dist[e.dst as usize] = nd;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut cfg = EngineConfig::for_test(3);
    cfg.batch_policy = BatchPolicy::FixedVertices(16);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let got: Vec<Vec<f32>> = cluster
        .run(|ctx| {
            let dist = ctx.vertex_array::<f32>("dist")?;
            let active = ctx.vertex_array::<bool>("active")?;
            let (d, a) = (dist.clone(), active.clone());
            ctx.process_vertices(&["dist", "active"], None, |v, c| {
                if v == 0 {
                    c.set(&a, v, true);
                    c.set(&d, v, 0.0);
                } else {
                    c.set(&a, v, false);
                    c.set(&d, v, f32::INFINITY);
                }
                0u64
            })?;
            loop {
                let (d1, a1) = (dist.clone(), active.clone());
                let (d2, a2) = (dist.clone(), active.clone());
                let n_update = ctx.process_edges(
                    &["dist", "active"],
                    &["dist", "active"],
                    Some(&active),
                    move |v, c| {
                        c.set(&a1, v, false);
                        Some(c.get(&d1, v))
                    },
                    move |msg: f32, _src, dst, w: &f32, c| {
                        if msg + w < c.get(&d2, dst) {
                            c.set(&a2, dst, true);
                            c.set(&d2, dst, msg + w);
                            1u64
                        } else {
                            0u64
                        }
                    },
                )?;
                if n_update == 0 {
                    break;
                }
            }
            let r = ctx.plan().partitions[ctx.rank()];
            let mut out = vec![0f32; r.len() as usize];
            let dd = dist.clone();
            let sink = std::sync::Mutex::new(&mut out);
            ctx.process_vertices(&["dist"], None, |v, c| {
                let val = c.get(&dd, v);
                sink.lock().unwrap()[(v - r.start) as usize] = val;
                0u64
            })?;
            Ok(out)
        })
        .unwrap();
    let got: Vec<f32> = got.into_iter().flatten().collect();
    for (v, (a, b)) in got.iter().zip(&dist).enumerate() {
        assert!(
            (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3,
            "vertex {v}: engine {a}, oracle {b}"
        );
    }
}

/// Selective scheduling: with only one active vertex, only its messages may
/// flow, and slot must fire exactly out_degree(v) times.
#[test]
fn single_active_vertex_touches_only_its_edges() {
    let g = rmat(GenConfig::new(8, 4, 23));
    let hub: VertexId = {
        // pick the vertex with the most out-edges
        let mut d = vec![0u32; g.n_vertices as usize];
        for e in &g.edges {
            d[e.src as usize] += 1;
        }
        d.iter().enumerate().max_by_key(|(_, &x)| x).unwrap().0 as VertexId
    };
    let out_deg = g.edges.iter().filter(|e| e.src == hub).count() as u64;

    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(8);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let slot_calls = cluster
        .run(|ctx| {
            let active = ctx.vertex_array::<bool>("active")?;
            let a = active.clone();
            ctx.process_vertices(&["active"], None, move |v, c| {
                c.set(&a, v, v == hub);
                0u64
            })?;
            ctx.process_edges(
                &[],
                &[],
                Some(&active),
                |_v, _c| Some(1u8),
                |_m: u8, src, _dst, _d: &(), _c| {
                    assert_eq!(src, hub, "slot fired for an inactive source");
                    1u64
                },
            )
        })
        .unwrap();
    assert_eq!(slot_calls[0], out_deg);
}

/// Messages must arrive even when the graph has edges in only one direction
/// between two specific nodes (regression guard for stream pairing).
#[test]
fn asymmetric_traffic_pattern() {
    // all edges flow 0 -> partition of the highest vertices
    let edges: Vec<Edge<()>> = (0..50).map(|i| Edge::new(i % 10, 90 + i % 10, ())).collect();
    let g = EdgeList::new(100, edges);
    let want = brute_in_degrees(&g);
    let mut cfg = EngineConfig::for_test(4);
    cfg.batch_policy = BatchPolicy::FixedVertices(7);
    assert_eq!(engine_in_degrees(cfg, &g), want);
}

/// ProcessVertices sums its work return values across the cluster.
#[test]
fn process_vertices_accumulates_globally() {
    let g = uniform(123, 400, 9);
    let cfg = EngineConfig::for_test(3);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let sums = cluster
        .run(|ctx| {
            let _x = ctx.vertex_array::<u32>("x")?;
            ctx.process_vertices(&["x"], None, |_v, _c| 1u64)
        })
        .unwrap();
    assert!(sums.iter().all(|&s| s == 123));
}

/// Self-loops and duplicate edges must be preserved (multigraph semantics:
/// one slot call per edge).
#[test]
fn multigraph_and_self_loops() {
    let g = EdgeList::new(
        6,
        vec![
            Edge::new(2, 2, ()),
            Edge::new(2, 2, ()),
            Edge::new(0, 5, ()),
            Edge::new(0, 5, ()),
            Edge::new(0, 5, ()),
            Edge::new(4, 1, ()),
        ],
    );
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(2);
    let got = engine_in_degrees(cfg, &g);
    assert_eq!(got, vec![0, 1, 2, 0, 0, 3]);
}

/// Empty graphs and graphs with no active vertices terminate cleanly.
#[test]
fn empty_active_set_is_a_noop() {
    let g = uniform(64, 256, 1);
    let cfg = EngineConfig::for_test(2);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let res = cluster
        .run(|ctx| {
            let active = ctx.vertex_array::<bool>("active")?;
            // nobody active
            ctx.process_edges(
                &[],
                &[],
                Some(&active),
                |_v, _c| Some(1u8),
                |_m: u8, _s, _d, _e: &(), _c| 1u64,
            )
        })
        .unwrap();
    assert_eq!(res, vec![0, 0]);
}

/// Two consecutive ProcessEdges calls must not leak state (message files,
/// stream tags) into each other.
#[test]
fn consecutive_calls_are_isolated() {
    let g = uniform(100, 700, 8);
    let want = brute_in_degrees(&g);
    let cfg = EngineConfig::for_test(2);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let rounds = cluster
        .run(|ctx| {
            let deg = ctx.vertex_array::<u64>("deg")?;
            let mut totals = Vec::new();
            for _ in 0..3 {
                let d = deg.clone();
                // reset
                ctx.process_vertices(&["deg"], None, {
                    let d = d.clone();
                    move |v, c| {
                        c.set(&d, v, 0);
                        0u64
                    }
                })?;
                ctx.process_edges(&[], &["deg"], None, |_v, _c| Some(1u64), {
                    let d = d.clone();
                    move |m: u64, _s, dst, _e: &(), c| {
                        let cur = c.get(&d, dst);
                        c.set(&d, dst, cur + m);
                        m
                    }
                })
                .map(|t: u64| totals.push(t))?;
            }
            Ok(totals)
        })
        .unwrap();
    let expected: u64 = want.iter().sum();
    for node_totals in rounds {
        assert_eq!(node_totals, vec![expected; 3]);
    }
}
