//! Checkpointing and recovery (paper §3.2): a crashed run resumes from the
//! state after the last successful `Process` call, losing at most one call.
//!
//! Recovery discipline (as in any distributed checkpointing system): nodes
//! may have committed different numbers of calls when the failure hit, so a
//! recovering program first agrees on the minimum committed round via an
//! all-reduce, then re-executes deterministically from there — which is why
//! the round bodies below are idempotent (set, not increment).

use dfo_core::Cluster;
use dfo_graph::gen::uniform;
use dfo_types::{BatchPolicy, EngineConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tempfile::TempDir;

fn cfg_ckpt(nodes: usize) -> EngineConfig {
    let mut cfg = EngineConfig::for_test(nodes);
    cfg.checkpointing = true;
    cfg.checkpoints_kept = 2;
    cfg.batch_policy = BatchPolicy::FixedVertices(16);
    cfg
}

/// Runs `iters` idempotent rounds (`acc[v] = (v+1)·round`); optionally
/// panics on node 1 before round `crash_at` commits.
fn run_rounds(
    cluster: &Cluster,
    iters: u64,
    crash_at: Option<u64>,
) -> dfo_types::Result<Vec<Vec<u64>>> {
    cluster.run(|ctx| {
        let acc = ctx.vertex_array::<u64>("acc")?;
        let round = ctx.vertex_array::<u64>("round")?;
        // local committed round = min over vertices; global resume point =
        // min over nodes (a node that committed further simply re-executes)
        let local_round = {
            let h = round.clone();
            let min = AtomicU64::new(u64::MAX);
            ctx.process_vertices(&["round"], None, |v, c| {
                min.fetch_min(c.get(&h, v), Ordering::Relaxed);
                let _ = v;
                0u64
            })?;
            let m = min.load(Ordering::Relaxed);
            if m == u64::MAX {
                0
            } else {
                m
            }
        };
        let r0 = ctx.net().allreduce_min_u64(local_round);
        for it in r0..iters {
            if crash_at == Some(it) && ctx.rank() == 1 {
                panic!("injected failure at round {it}");
            }
            let (a, r) = (acc.clone(), round.clone());
            ctx.process_vertices(&["acc", "round"], None, move |v, c| {
                c.set(&a, v, (v + 1) * (it + 1));
                c.set(&r, v, it + 1);
                0u64
            })?;
        }
        // read back this node's slice
        let range = ctx.plan().partitions[ctx.rank()];
        let mut out = vec![0u64; range.len() as usize];
        let h = acc.clone();
        let sink = std::sync::Mutex::new(&mut out);
        ctx.process_vertices(&["acc"], None, |v, c| {
            let val = c.get(&h, v);
            sink.lock().unwrap()[(v - range.start) as usize] = val;
            0u64
        })?;
        Ok(out)
    })
}

#[test]
fn crash_and_recover_loses_at_most_one_call() {
    let g = uniform(96, 400, 4);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg_ckpt(2), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();

    // first attempt crashes on node 1 before round 3 commits
    let crashed = run_rounds(&cluster, 5, Some(3));
    assert!(crashed.is_err(), "injected failure must surface");

    // recovery: resumes from the globally agreed round and completes
    let recovered = run_rounds(&cluster, 5, None).expect("recovery run");
    let mut v = 0u64;
    for vals in recovered {
        for got in vals {
            assert_eq!(got, (v + 1) * 5, "vertex {v} after recovery");
            v += 1;
        }
    }
    assert_eq!(v, 96);
}

#[test]
fn process_edges_state_survives_crash_in_later_call() {
    let g = uniform(64, 300, 7);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg_ckpt(2), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();

    // run 1: one full ProcessEdges (commits), then crash mid second call
    let crashed_once = AtomicBool::new(false);
    let r = cluster.run(|ctx| {
        let deg = ctx.vertex_array::<u64>("deg")?;
        let d = deg.clone();
        ctx.process_edges(
            &[],
            &["deg"],
            None,
            |_v, _c| Some(1u64),
            move |m: u64, _s, dst, _e: &(), c| {
                let cur = c.get(&d, dst);
                c.set(&d, dst, cur + m);
                m
            },
        )?;
        if ctx.rank() == 0 && !crashed_once.swap(true, Ordering::SeqCst) {
            panic!("crash after first call commits");
        }
        Ok(0u64)
    });
    assert!(r.is_err());

    // run 2: degree data from the committed first call must be intact
    let sums = cluster
        .run(|ctx| {
            let deg = ctx.vertex_array::<u64>("deg")?;
            let h = deg.clone();
            ctx.process_vertices(&["deg"], None, move |v, c| {
                let _ = v;
                c.get(&h, v)
            })
        })
        .unwrap();
    assert_eq!(sums[0], g.n_edges(), "first call's in-degrees must survive the crash");
}

#[test]
fn checkpoints_bound_disk_usage() {
    let g = uniform(64, 200, 2);
    let mut cfg = cfg_ckpt(1);
    cfg.checkpoints_kept = 1;
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    cluster
        .run(|ctx| {
            let x = ctx.vertex_array::<u64>("x")?;
            for i in 0..10u64 {
                let h = x.clone();
                ctx.process_vertices(&["x"], None, move |v, c| {
                    c.set(&h, v, v + i);
                    0u64
                })?;
            }
            Ok(0u64)
        })
        .unwrap();
    // with keep=1 only one checkpoint's blocks may remain per array
    let blocks_dir = td.path().join("n0/arrays/x/blocks");
    let n_blocks = std::fs::read_dir(&blocks_dir).unwrap().count();
    let n_batches = 64usize.div_ceil(16);
    assert!(
        n_blocks <= n_batches + 1,
        "GC must bound block files: found {n_blocks} for {n_batches} batches"
    );
}

#[test]
fn no_checkpointing_means_no_checkpoint_files() {
    let g = uniform(32, 100, 3);
    let mut cfg = EngineConfig::for_test(1);
    cfg.checkpointing = false;
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    cluster
        .run(|ctx| {
            let x = ctx.vertex_array::<u32>("x")?;
            let h = x.clone();
            ctx.process_vertices(&["x"], None, move |v, c| {
                c.set(&h, v, 1);
                0u64
            })
        })
        .unwrap();
    assert!(!td.path().join("n0/arrays/x/CURRENT").exists());
    assert!(!td.path().join("n0/arrays/x/meta").exists());
}
