//! Distributed checkpoint-restart over real TCP: rank 1 is killed
//! mid-iteration at a deterministic commit boundary (`DFO_CRASH_AT`), the
//! [`Supervisor`] relaunches it under the next mesh epoch, the survivor
//! re-bootstraps in place via [`Cluster::run_supervised`], both agree on
//! the resume round from the last complete checkpoint, and the final
//! PageRank vector is **bit-identical** to an uninterrupted run.
//!
//! Same re-exec harness as `distributed.rs`: the `child_entry` "test" is a
//! no-op under plain `cargo test` and one supervised rank when
//! `DFO_RESTART_ROLE` is set.

use dfo_core::{Cluster, NodeCtx, Supervisor};
use dfo_graph::gen::uniform;
use dfo_types::{BatchPolicy, EngineConfig, Result};
use std::io::Write;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;
use tempfile::TempDir;

const ROLE_ENV: &str = "DFO_RESTART_ROLE";
const ITERS: u64 = 4;
const DAMPING: f64 = 0.85;
/// The round whose in-flight work the kill interrupts (0-based).
const CRASH_ROUND: u64 = 2;
/// Call numbering of a fresh `ckpt_pagerank` run: call 0 = resume scan,
/// call 1 = init, round `it` = calls `2+3it` (clear), `3+3it`
/// (ProcessEdges), `4+3it` (apply + round marker). The hook fires before
/// round `CRASH_ROUND`'s ProcessEdges commits — mid-iteration.
const CRASH_CALL: u64 = 3 + 3 * CRASH_ROUND;

fn dist_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::for_test(2);
    cfg.checkpointing = true;
    cfg.checkpoints_kept = 2;
    cfg.batch_policy = BatchPolicy::FixedVertices(32);
    cfg.connect_timeout_secs = 60;
    cfg
}

fn dist_graph() -> dfo_graph::EdgeList<()> {
    uniform(128, 800, 11)
}

fn out_degrees(g: &dfo_graph::EdgeList<()>) -> Vec<u64> {
    let mut deg = vec![0u64; g.n_vertices as usize];
    for e in &g.edges {
        deg[e.src as usize] += 1;
    }
    deg
}

/// Checkpoint-aware push PageRank (§3.2 recovery discipline): every round
/// body is idempotent, and the round marker commits in the same `Process`
/// call as the rank update, so a restart re-executes at most the one
/// interrupted round from bit-identical committed inputs.
fn ckpt_pagerank(ctx: &mut NodeCtx, degrees: &[u64], resume_log: &Path) -> Result<Vec<f64>> {
    let n = ctx.plan().n_vertices as f64;
    let rank_arr = ctx.vertex_array::<f64>("pr_rank")?;
    let next_arr = ctx.vertex_array::<f64>("pr_next")?;
    let deg_arr = ctx.vertex_array::<u64>("pr_deg")?;
    let round_arr = ctx.vertex_array::<u64>("pr_round")?;

    let r0 = ctx.committed_round("pr_round")?; // call 0
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(resume_log)
        .expect("open resume log");
    writeln!(log, "{r0}").expect("write resume log");

    if r0 == 0 {
        // call 1: initial state (idempotent — safe to re-run on a crash
        // before round 0 commits)
        let (r, d) = (rank_arr.clone(), deg_arr.clone());
        let degrees = degrees.to_vec();
        ctx.process_vertices(&["pr_rank", "pr_deg"], None, move |v, c| {
            c.set(&r, v, 1.0 / n);
            c.set(&d, v, degrees[v as usize]);
            0u64
        })?;
    }
    for it in r0..ITERS {
        {
            let nx = next_arr.clone();
            ctx.process_vertices(&["pr_next"], None, move |v, c| {
                c.set(&nx, v, 0.0);
                0u64
            })?;
        }
        {
            let (r, d, nx) = (rank_arr.clone(), deg_arr.clone(), next_arr.clone());
            ctx.process_edges(
                &["pr_rank", "pr_deg"],
                &["pr_next"],
                None,
                move |v, c| {
                    let dv = c.get(&d, v);
                    if dv == 0 {
                        None
                    } else {
                        Some(c.get(&r, v) / dv as f64)
                    }
                },
                move |msg: f64, _s, dst, _e: &(), c| {
                    let cur = c.get(&nx, dst);
                    c.set(&nx, dst, cur + msg);
                    0u64
                },
            )?;
        }
        {
            // apply + round marker in ONE call: both commit at the same
            // boundary, so recovery can trust the marker
            let (r, nx, rd) = (rank_arr.clone(), next_arr.clone(), round_arr.clone());
            ctx.process_vertices(&["pr_rank", "pr_next", "pr_round"], None, move |v, c| {
                let s = c.get(&nx, v);
                c.set(&r, v, (1.0 - DAMPING) / n + DAMPING * s);
                c.set(&rd, v, it + 1);
                0u64
            })?;
        }
    }
    // read back this rank's slice
    let range = ctx.plan().partitions[ctx.rank()];
    let mut out = vec![0f64; range.len() as usize];
    let h = rank_arr.clone();
    let sink = std::sync::Mutex::new(&mut out);
    ctx.process_vertices(&["pr_rank"], None, |v, c| {
        let val = c.get(&h, v);
        sink.lock().unwrap()[(v - range.start) as usize] = val;
        0u64
    })?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// worker side

/// No-op under plain `cargo test`; one supervised rank when the role env
/// var is set (the supervisor spawns this binary with `child_entry --exact`).
#[test]
fn child_entry() {
    if std::env::var(ROLE_ENV).is_err() {
        return;
    }
    let rank = EngineConfig::env_rank().expect("DFO_RANK");
    let base = PathBuf::from(std::env::var("DFO_BASE").expect("DFO_BASE"));
    let mut cfg = dist_cfg();
    cfg.apply_env_overrides(); // DFO_PEERS, DFO_EPOCH, DFO_MAX_RESTARTS, DFO_CRASH_AT
    assert!(cfg.peers.is_some(), "worker needs DFO_PEERS");
    let degrees = out_degrees(&dist_graph());
    let cluster = Cluster::create(cfg, &base).expect("reopen cluster");
    let resume_log = base.join(format!("resume_r{rank}.log"));
    let res = cluster.run_supervised(rank, |ctx| ckpt_pagerank(ctx, &degrees, &resume_log));
    let code = match res {
        Ok(slice) => {
            let bytes: Vec<u8> = slice.iter().flat_map(|v| v.to_le_bytes()).collect();
            std::fs::write(base.join(format!("out_r{rank}.bin")), bytes).expect("write slice");
            0
        }
        Err(e) => {
            eprintln!("supervised rank {rank} failed: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// parent side

fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect()
}

/// Runs a full supervised 2-rank job over `base`; `crash` injects the
/// deterministic kill into rank 1's first incarnation.
fn supervise(base: &Path, crash: bool) -> dfo_core::SuperviseReport {
    let peers = free_addrs(2);
    let sup = Supervisor::new(peers.clone(), 2).with_deadline(Duration::from_secs(120));
    sup.run(|spec| {
        let mut cmd = Command::new(std::env::current_exe().unwrap());
        cmd.args(["child_entry", "--exact", "--test-threads=1", "--nocapture"])
            .env(ROLE_ENV, "supervised")
            .env("DFO_BASE", base);
        // no epoch file: this test also covers the legacy local-bump epoch
        // path (single failure per recovery window); the chaos tests cover
        // the supervisor-published authority
        spec.configure(&mut cmd, &peers, 2, None);
        if crash && spec.rank == 1 && spec.attempt == 0 {
            cmd.env("DFO_CRASH_AT", format!("{CRASH_CALL}:1"));
        }
        cmd.spawn()
    })
    .expect("supervised job")
}

fn read_resume_log(base: &Path, rank: usize) -> Vec<u64> {
    std::fs::read_to_string(base.join(format!("resume_r{rank}.log")))
        .expect("resume log")
        .lines()
        .map(|l| l.trim().parse().expect("resume round"))
        .collect()
}

#[test]
fn killed_rank_is_relaunched_and_result_is_bit_identical() {
    let g = dist_graph();
    let td_crash = TempDir::new().unwrap();
    let td_clean = TempDir::new().unwrap();
    for td in [&td_crash, &td_clean] {
        let cluster = Cluster::create(dist_cfg(), td.path()).unwrap();
        cluster.preprocess(&g).unwrap();
    }

    // crashed run: rank 1 dies mid-iteration, the supervisor relaunches it
    // exactly once under epoch 1
    let report = supervise(td_crash.path(), true);
    assert_eq!(report.restarts, 1, "exactly one relaunch, got {report:?}");
    assert_eq!(report.relaunches, vec![(1, 1)]);

    // uninterrupted reference run
    let clean = supervise(td_clean.path(), false);
    assert_eq!(clean.restarts, 0, "clean run must not restart, got {clean:?}");

    // the headline guarantee: bit-identical results across {crash, no-crash}
    for rank in 0..2 {
        let a = std::fs::read(td_crash.path().join(format!("out_r{rank}.bin"))).unwrap();
        let b = std::fs::read(td_clean.path().join(format!("out_r{rank}.bin"))).unwrap();
        assert!(!a.is_empty() && a.len().is_multiple_of(8));
        assert_eq!(a, b, "rank {rank}: crashed-and-recovered PageRank differs from clean run");
    }

    // recovery really resumed from the checkpoint: every rank's second
    // attempt started at CRASH_ROUND (rounds 0..CRASH_ROUND were *not*
    // re-executed — at most the interrupted round was lost)
    for rank in 0..2 {
        let log = read_resume_log(td_crash.path(), rank);
        assert_eq!(
            log,
            vec![0, CRASH_ROUND],
            "rank {rank}: want a fresh start then a resume at round {CRASH_ROUND}"
        );
    }
    for rank in 0..2 {
        assert_eq!(read_resume_log(td_clean.path(), rank), vec![0], "rank {rank} clean run");
    }
}
