//! Chunk cache + read-ahead prefetch: cross-call chunk reuse, eviction
//! under a tiny budget, budget-0 inertness, and bit-identical results
//! across the whole (budget × prefetch depth) matrix.

use dfo_core::Cluster;
use dfo_graph::edge::EdgeList;
use dfo_graph::gen::{rmat, GenConfig};
use dfo_types::{BatchPolicy, EngineConfig, PhaseStats};
use tempfile::TempDir;

fn cache_cfg(budget: u64, depth: usize) -> EngineConfig {
    let mut c = EngineConfig::for_test(2);
    c.batch_policy = BatchPolicy::FixedVertices(64);
    c.chunk_cache_bytes = budget;
    c.prefetch_depth = depth;
    c
}

fn graph() -> EdgeList<()> {
    rmat(GenConfig::new(9, 6, 5))
}

/// Runs `iters` iterations of an accumulate-in-degrees job (every vertex
/// signals 1 every iteration, like PageRank's full-frontier push). Returns
/// the final per-vertex sums in rank order and, per iteration, the
/// [`PhaseStats`] merged across nodes.
fn iterate(cfg: EngineConfig, g: &EdgeList<()>, iters: usize) -> (Vec<u64>, Vec<PhaseStats>) {
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(g).unwrap();
    let per_node = cluster
        .run(|ctx| {
            let acc = ctx.vertex_array::<u64>("acc")?;
            let mut stats = Vec::new();
            for _ in 0..iters {
                let a = acc.clone();
                ctx.process_edges(
                    &[],
                    &["acc"],
                    None,
                    |_v, _c| Some(1u64),
                    move |m: u64, _s, d, _e: &(), cx| {
                        let cur = cx.get(&a, d);
                        cx.set(&a, d, cur + m);
                        0u64
                    },
                )?;
                stats.push(ctx.last_phase_stats().clone());
            }
            let r = ctx.plan().partitions[ctx.rank()];
            let out = std::sync::Mutex::new(vec![0u64; r.len() as usize]);
            let a = acc.clone();
            ctx.process_vertices(&["acc"], None, |v, c| {
                out.lock().unwrap()[(v - r.start) as usize] = c.get(&a, v);
                0u64
            })?;
            Ok((out.into_inner().unwrap(), stats))
        })
        .unwrap();
    let mut values = Vec::new();
    let mut merged = vec![PhaseStats::default(); iters];
    for (vals, stats) in per_node {
        values.extend(vals);
        for (m, s) in merged.iter_mut().zip(&stats) {
            m.merge(s);
        }
    }
    (values, merged)
}

#[test]
fn warm_iterations_read_strictly_fewer_bytes() {
    let g = graph();
    let (_, stats) = iterate(cache_cfg(1 << 30, 2), &g, 3);
    // iteration 1 is cold: every loaded chunk is a miss
    assert!(stats[0].chunk_cache_misses > 0, "cold run must miss: {:?}", stats[0]);
    // warm iterations reuse every decoded chunk: phase-4 reads drop to the
    // message segments only, strictly below the cold iteration
    for (i, s) in stats.iter().enumerate().skip(1) {
        assert!(
            s.process_disk_read < stats[0].process_disk_read,
            "iteration {} read {} bytes, cold iteration read {}",
            i + 1,
            s.process_disk_read,
            stats[0].process_disk_read
        );
        assert!(s.chunk_cache_hits > 0, "iteration {} should hit", i + 1);
        assert_eq!(s.chunk_cache_misses, 0, "fits-all budget must not miss when warm");
        assert_eq!(s.chunk_cache_evicted_bytes, 0, "fits-all budget must not evict");
    }
}

#[test]
fn budget_zero_is_inert() {
    let g = graph();
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cache_cfg(0, 2), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    assert!(cluster.chunk_cache_stats().is_empty(), "budget 0 must not allocate caches");
    let (_, stats) = iterate(cache_cfg(0, 2), &g, 2);
    for s in &stats {
        assert_eq!(s.chunk_cache_hits, 0);
        assert_eq!(s.chunk_cache_misses, 0);
        assert_eq!(s.chunk_cache_evicted_bytes, 0);
    }
}

#[test]
fn tiny_budget_evicts_and_stays_correct() {
    let g = graph();
    let (baseline, _) = iterate(cache_cfg(0, 0), &g, 3);
    let (vals, stats) = iterate(cache_cfg(16 << 10, 2), &g, 3);
    assert_eq!(vals, baseline, "eviction must never change results");
    let evicted: u64 = stats.iter().map(|s| s.chunk_cache_evicted_bytes).sum();
    assert!(evicted > 0, "a 16 KB budget cannot hold this graph's chunks without evicting");
}

#[test]
fn resident_bytes_respect_the_budget() {
    let g = graph();
    let budget = 16 << 10;
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(cache_cfg(budget, 2), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    cluster
        .run(|ctx| {
            let acc = ctx.vertex_array::<u64>("acc")?;
            let a = acc.clone();
            ctx.process_edges(
                &[],
                &["acc"],
                None,
                |_v, _c| Some(1u64),
                move |m: u64, _s, d, _e: &(), cx| {
                    let cur = cx.get(&a, d);
                    cx.set(&a, d, cur + m);
                    0u64
                },
            )?;
            Ok(())
        })
        .unwrap();
    for (rank, s) in cluster.chunk_cache_stats().iter().enumerate() {
        assert!(
            s.resident_bytes <= budget,
            "rank {rank}: {} resident bytes over the {budget} budget",
            s.resident_bytes
        );
        assert!(s.inserted_bytes > 0, "rank {rank}: cache was never used");
    }
}

#[test]
fn results_identical_across_budget_and_depth_matrix() {
    let g = graph();
    let (baseline, _) = iterate(cache_cfg(0, 0), &g, 3);
    for budget in [0u64, 16 << 10, 1 << 30] {
        for depth in [0usize, 2] {
            let (vals, _) = iterate(cache_cfg(budget, depth), &g, 3);
            assert_eq!(vals, baseline, "budget={budget} depth={depth}");
        }
    }
}
