//! Multi-process cluster tests: each rank is a real OS process joined over
//! localhost TCP via [`Cluster::run_distributed`].
//!
//! The tests re-exec this test binary as the worker processes: the
//! `child_entry` "test" is a no-op under normal `cargo test`, but when
//! spawned with `DFO_CORE_DIST_ROLE` set it acts as one rank and exits with
//! a status code the parent asserts on. Workers find the shared
//! preprocessed cluster through `DFO_BASE` and the mesh through the
//! `DFO_RANK` / `DFO_PEERS` environment overrides.

use dfo_core::{Cluster, NodeCtx};
use dfo_graph::gen::uniform;
use dfo_types::{BatchPolicy, DfoError, EngineConfig, Result};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};
use tempfile::TempDir;

const ROLE_ENV: &str = "DFO_CORE_DIST_ROLE";
const PAGERANK_ITERS: usize = 4;
const DAMPING: f64 = 0.85;

/// Config shared by the parent and every worker process — they must agree.
fn dist_cfg(nodes: usize) -> EngineConfig {
    let mut cfg = EngineConfig::for_test(nodes);
    cfg.batch_policy = BatchPolicy::FixedVertices(32);
    cfg.connect_timeout_secs = 60;
    cfg
}

/// The deterministic test graph; workers regenerate it from the same seed.
fn dist_graph() -> dfo_graph::EdgeList<()> {
    uniform(192, 1400, 5)
}

fn out_degrees(g: &dfo_graph::EdgeList<()>) -> Vec<u64> {
    let mut deg = vec![0u64; g.n_vertices as usize];
    for e in &g.edges {
        deg[e.src as usize] += 1;
    }
    deg
}

/// Push-style damped PageRank (the dfo-algos formulation, inlined because
/// dfo-core cannot depend on dfo-algos); returns this rank's slice.
fn mini_pagerank(ctx: &mut NodeCtx, degrees: &[u64], iters: usize) -> Result<Vec<f64>> {
    let n = ctx.plan().n_vertices as f64;
    let rank_arr = ctx.vertex_array::<f64>("pr_rank")?;
    let next_arr = ctx.vertex_array::<f64>("pr_next")?;
    let deg_arr = ctx.vertex_array::<u64>("pr_deg")?;
    {
        let (r, d) = (rank_arr.clone(), deg_arr.clone());
        let degrees = degrees.to_vec();
        ctx.process_vertices(&["pr_rank", "pr_deg"], None, move |v, c| {
            c.set(&r, v, 1.0 / n);
            c.set(&d, v, degrees[v as usize]);
            0u64
        })?;
    }
    for _ in 0..iters {
        {
            let nx = next_arr.clone();
            ctx.process_vertices(&["pr_next"], None, move |v, c| {
                c.set(&nx, v, 0.0);
                0u64
            })?;
        }
        {
            let (r, d, nx) = (rank_arr.clone(), deg_arr.clone(), next_arr.clone());
            ctx.process_edges(
                &["pr_rank", "pr_deg"],
                &["pr_next"],
                None,
                move |v, c| {
                    let dv = c.get(&d, v);
                    if dv == 0 {
                        None
                    } else {
                        Some(c.get(&r, v) / dv as f64)
                    }
                },
                move |msg: f64, _s, dst, _e: &(), c| {
                    let cur = c.get(&nx, dst);
                    c.set(&nx, dst, cur + msg);
                    0u64
                },
            )?;
        }
        {
            let (r, nx) = (rank_arr.clone(), next_arr.clone());
            ctx.process_vertices(&["pr_rank", "pr_next"], None, move |v, c| {
                let s = c.get(&nx, v);
                c.set(&r, v, (1.0 - DAMPING) / n + DAMPING * s);
                0u64
            })?;
        }
    }
    // read back this rank's slice
    let range = ctx.plan().partitions[ctx.rank()];
    let mut out = vec![0f64; range.len() as usize];
    let h = rank_arr.clone();
    let sink = std::sync::Mutex::new(&mut out);
    ctx.process_vertices(&["pr_rank"], None, |v, c| {
        let val = c.get(&h, v);
        sink.lock().unwrap()[(v - range.start) as usize] = val;
        0u64
    })?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// worker-side entry points

/// No-op under plain `cargo test`; a worker process when the role env var
/// is set (the parent spawns this binary with `child_entry --exact`).
#[test]
fn child_entry() {
    let Ok(role) = std::env::var(ROLE_ENV) else { return };
    let code = match role.as_str() {
        "pagerank" => worker_pagerank(),
        "survivor" => worker_survivor(),
        "victim" => worker_victim(),
        other => {
            eprintln!("unknown worker role {other:?}");
            2
        }
    };
    std::process::exit(code);
}

fn worker_env() -> (usize, PathBuf, EngineConfig) {
    let rank = EngineConfig::env_rank().expect("DFO_RANK");
    let base = PathBuf::from(std::env::var("DFO_BASE").expect("DFO_BASE"));
    let mut cfg = dist_cfg(2);
    cfg.apply_env_overrides(); // DFO_PEERS → TCP transport
    assert!(cfg.peers.is_some(), "worker needs DFO_PEERS");
    (rank, base, cfg)
}

fn worker_pagerank() -> i32 {
    let (rank, base, cfg) = worker_env();
    let degrees = out_degrees(&dist_graph());
    let cluster = Cluster::create(cfg, &base).expect("reopen cluster");
    match cluster.run_distributed(rank, |ctx| mini_pagerank(ctx, &degrees, PAGERANK_ITERS)) {
        Ok(slice) => {
            let bytes: Vec<u8> = slice.iter().flat_map(|v| v.to_le_bytes()).collect();
            std::fs::write(base.join(format!("pr_out_r{rank}.bin")), bytes).expect("write slice");
            0
        }
        Err(e) => {
            eprintln!("worker rank {rank} failed: {e}");
            1
        }
    }
}

/// Rank 0: expects its peer to die after the first barrier; the second
/// barrier must surface `NetClosed` instead of hanging.
fn worker_survivor() -> i32 {
    let (rank, base, cfg) = worker_env();
    let cluster = Cluster::create(cfg, &base).expect("reopen cluster");
    let res = cluster.run_distributed(rank, |ctx| {
        ctx.net().barrier(); // both ranks alive
        ctx.net().barrier(); // peer is dead by/while here: must not hang
        Ok(())
    });
    match res {
        Err(DfoError::NetClosed(_)) => 0,
        other => {
            eprintln!("survivor wanted NetClosed, got {other:?}");
            1
        }
    }
}

/// Rank 1: joins, passes one barrier, then dies abruptly — `process::exit`
/// from inside the node program, so no teardown runs and the OS just drops
/// the sockets, exactly like a SIGKILL at that point.
fn worker_victim() -> i32 {
    let (rank, base, cfg) = worker_env();
    let cluster = Cluster::create(cfg, &base).expect("reopen cluster");
    let _ = cluster.run_distributed(rank, |ctx| -> Result<()> {
        ctx.net().barrier();
        std::process::exit(7);
    });
    unreachable!("victim exits inside the closure");
}

// ---------------------------------------------------------------------------
// parent-side helpers

fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect()
}

fn spawn_worker(role: &str, rank: usize, base: &Path, peers: &str) -> Child {
    Command::new(std::env::current_exe().unwrap())
        .args(["child_entry", "--exact", "--test-threads=1", "--nocapture"])
        .env(ROLE_ENV, role)
        .env("DFO_RANK", rank.to_string())
        .env("DFO_PEERS", peers)
        .env("DFO_BASE", base)
        .spawn()
        .expect("spawn worker process")
}

/// Waits with a deadline so a transport bug can never hang the suite; on
/// timeout the worker is killed and the test fails loudly.
fn wait_with_deadline(child: &mut Child, what: &str) -> ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            return st;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} hung past the deadline (transport failed to surface an error?)");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------------
// the actual tests

#[test]
fn two_process_pagerank_matches_in_process() {
    let g = dist_graph();
    let degrees = out_degrees(&g);
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(dist_cfg(2), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();

    // reference: the same program over the in-process channel transport
    let reference: Vec<Vec<f64>> =
        cluster.run(|ctx| mini_pagerank(ctx, &degrees, PAGERANK_ITERS)).unwrap();

    let peers = free_addrs(2).join(",");
    let mut workers: Vec<Child> =
        (0..2).map(|r| spawn_worker("pagerank", r, td.path(), &peers)).collect();
    for (r, w) in workers.iter_mut().enumerate() {
        let st = wait_with_deadline(w, &format!("pagerank worker {r}"));
        assert!(st.success(), "worker {r} exited with {st:?}");
    }

    for (r, want) in reference.iter().enumerate() {
        let bytes = std::fs::read(td.path().join(format!("pr_out_r{r}.bin"))).unwrap();
        assert_eq!(bytes.len(), want.len() * 8, "rank {r} slice length");
        for (v, w) in want.iter().enumerate() {
            let got = f64::from_le_bytes(bytes[v * 8..v * 8 + 8].try_into().unwrap());
            assert!((got - w).abs() <= 1e-9, "vertex {v} of rank {r}: tcp {got} vs in-process {w}");
        }
    }
}

#[test]
fn killed_worker_process_poisons_survivor() {
    let g = dist_graph();
    let td = TempDir::new().unwrap();
    let cluster = Cluster::create(dist_cfg(2), td.path()).unwrap();
    cluster.preprocess(&g).unwrap();

    let peers = free_addrs(2).join(",");
    let mut survivor = spawn_worker("survivor", 0, td.path(), &peers);
    let mut victim = spawn_worker("victim", 1, td.path(), &peers);

    let vst = wait_with_deadline(&mut victim, "victim");
    assert_eq!(vst.code(), Some(7), "victim must die by its own exit(7)");
    let sst = wait_with_deadline(&mut survivor, "survivor");
    assert!(
        sst.success(),
        "survivor must observe NetClosed (exit 0), got {sst:?} — a hang would have tripped the deadline"
    );
}
