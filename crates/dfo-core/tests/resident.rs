//! In-process [`ResidentMesh`] tests: ranks as threads of one process over
//! localhost TCP, exercising the tag-namespace invariant that lets jobs
//! overlap on one mesh (see `resident.rs` module docs). The multi-process
//! deployment of the same machinery is covered end to end by
//! `crates/dfo-service/tests/remote.rs`.

use dfo_core::{Cluster, ResidentMesh};
use dfo_graph::gen::uniform;
use dfo_types::{BatchPolicy, EngineConfig};
use std::net::TcpListener;
use tempfile::TempDir;

fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect()
}

/// The SPMD job body: iterated in-degree counting over the preprocessed
/// graph — engine streams, message exchange and per-call cancel
/// collectives, the same call pattern an iterative algorithm (PageRank)
/// drives through the remote daemon.
fn in_degree_job(ctx: &mut dfo_core::NodeCtx) -> dfo_types::Result<Vec<u64>> {
    ctx.set_cancel_token(std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)));
    let deg = ctx.vertex_array::<u64>("deg")?;
    for _ in 0..5 {
        {
            let d = deg.clone();
            ctx.process_vertices(&["deg"], None, move |v, c| {
                c.set(&d, v, 0);
                0u64
            })?;
        }
        ctx.process_edges(
            &[],
            &["deg"],
            None,
            |_v, _c| Some(1u64),
            |msg, _s, dst, _d: &(), c| {
                let cur = c.get(&deg, dst);
                c.set(&deg, dst, cur + msg);
                1u64
            },
        )?;
    }
    let r = ctx.plan().partitions[ctx.rank()];
    let mut out = vec![0u64; r.len() as usize];
    let deg2 = deg.clone();
    let collected = std::sync::Mutex::new(&mut out);
    ctx.process_vertices(&["deg"], None, |v, c| {
        let val = c.get(&deg2, v);
        collected.lock().unwrap()[(v - r.start) as usize] = val;
        0u64
    })?;
    Ok(out)
}

/// N jobs overlapping on one 2-rank mesh — every job's result bit-equal to
/// the serial batch run over the same preprocessed chunks.
#[test]
fn concurrent_jobs_on_one_mesh_match_serial() {
    const JOBS: u64 = 3;
    let td = TempDir::new().unwrap();
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(32);
    cfg.peers = Some(free_addrs(2));
    cfg.connect_timeout_secs = 30;
    let cluster = Cluster::create(cfg.clone(), td.path()).unwrap();
    cluster.preprocess(&uniform(192, 1400, 5)).unwrap();
    let reference = cluster.run(in_degree_job).unwrap();

    let cluster = &cluster;
    std::thread::scope(|s| {
        for (rank, want) in reference.iter().enumerate() {
            let cfg = cfg.clone();
            s.spawn(move || {
                let mesh = ResidentMesh::connect(&cfg, rank).unwrap();
                let mesh = &mesh;
                std::thread::scope(|sj| {
                    for job in 0..JOBS {
                        sj.spawn(move || {
                            let scope = format!("j{job}");
                            let out = mesh.run_job_as(job, cluster, &scope, in_degree_job).unwrap();
                            mesh.job_barrier(job).unwrap();
                            mesh.end_job(job);
                            assert_eq!(out, *want, "job {job} rank {rank}");
                        });
                    }
                });
                mesh.barrier().unwrap();
            });
        }
    });
}
