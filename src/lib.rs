//! # dfograph
//!
//! Facade crate for the DFOGraph workspace: a Rust reproduction of
//! *DFOGraph: An I/O- and Communication-Efficient System for Distributed
//! Fully-out-of-Core Graph Processing* (PPoPP 2021).
//!
//! Re-exports the public API of every workspace crate. See the README for a
//! quickstart and `DESIGN.md` for the architecture.
//!
//! The **service API** is the primary entry point for applications: a
//! resident [`Service`] holds a catalog of preprocessed graphs and
//! multiplexes concurrent, cancellable, admission-controlled jobs over
//! them — see the [`service`] module docs and the README's "Service mode"
//! section. Batch mode (`core::Cluster::run` with the `algos` free
//! functions) remains fully supported for single-job programs and tests.

pub use dfo_algos as algos;
pub use dfo_baselines as baselines;
pub use dfo_core as core;
pub use dfo_graph as graph;
pub use dfo_net as net;
pub use dfo_obs as obs;
pub use dfo_part as part;
pub use dfo_service as service;
pub use dfo_storage as storage;
pub use dfo_types as types;

// Service-mode vocabulary at the crate root, so `use dfograph::{Service,
// JobSpec}` is all an application needs — and the remote counterparts
// (`Daemon` for the resident mesh, `DfoClient` for submission over TCP),
// so remote deployments need nothing beyond the facade either.
pub use dfo_service::{
    CatalogEntry, Daemon, DfoClient, JobHandle, JobParams, JobPhase, JobReport, JobSpec, JobStatus,
    RemoteJobHandle, Service,
};
