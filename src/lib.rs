//! # dfograph
//!
//! Facade crate for the DFOGraph workspace: a Rust reproduction of
//! *DFOGraph: An I/O- and Communication-Efficient System for Distributed
//! Fully-out-of-Core Graph Processing* (PPoPP 2021).
//!
//! Re-exports the public API of every workspace crate. See the README for a
//! quickstart and `DESIGN.md` for the architecture.

pub use dfo_algos as algos;
pub use dfo_baselines as baselines;
pub use dfo_core as core;
pub use dfo_graph as graph;
pub use dfo_net as net;
pub use dfo_part as part;
pub use dfo_storage as storage;
pub use dfo_types as types;
