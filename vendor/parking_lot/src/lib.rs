//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly, and `Condvar::wait` takes the guard
//! by `&mut` instead of by value. Only the surface used by the DFOGraph
//! workspace is provided.

use std::sync::{self, PoisonError};

/// A mutex whose `lock` never returns a poison error: a panic while holding
/// the lock simply passes the data on to the next locker, matching
/// `parking_lot` semantics closely enough for this workspace.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. The inner `Option` is only ever `None` transiently
/// inside [`Condvar::wait`], which must move the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard vacated")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard vacated")
    }
}

/// Condition variable operating on [`MutexGuard`] by `&mut`, as in
/// `parking_lot`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard vacated");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard vacated");
        let (inner, res) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] returned because of its timeout.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
