//! Offline shim for the `rand` crate (0.8-style API).
//!
//! Provides [`rngs::SmallRng`] (an xoshiro256++ generator seeded through
//! SplitMix64, like the real crate on 64-bit targets), the [`Rng`] extension
//! trait with `gen`/`gen_range`/`gen_bool`, and [`SeedableRng`] with
//! `seed_from_u64`. Deterministic for a given seed, which is all the
//! workspace's generators require.

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry points (only the `u64` convenience form is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `rng.gen_range(lo..hi)`.
pub trait SampleRange: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // in every workspace use, where the bias of a plain modulo
                // would already be negligible — kept exact anyway.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                range.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — matching the algorithm the
    /// real `rand::rngs::SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3u32..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "distribution should reach both ends");
    }
}
