//! Offline shim for the `tempfile` crate.
//!
//! Provides [`TempDir`]: a uniquely named directory under the system temp
//! dir, removed recursively on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory that is deleted (recursively) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under [`std::env::temp_dir`].
    pub fn new() -> std::io::Result<TempDir> {
        Self::new_in(std::env::temp_dir())
    }

    /// Creates a fresh directory under `base`.
    pub fn new_in(base: impl AsRef<Path>) -> std::io::Result<TempDir> {
        let pid = std::process::id();
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0);
            let path = base.as_ref().join(format!(".tmp-{pid}-{nanos:08x}-{n}"));
            match std::fs::create_dir_all(path.parent().unwrap_or(base.as_ref()))
                .and_then(|()| std::fs::create_dir(&path))
            {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Persists the directory, returning its path without deleting it.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        self.path()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Creates a [`TempDir`] in the system temp directory (free-function form).
pub fn tempdir() -> std::io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let td = TempDir::new().unwrap();
        let p = td.path().to_path_buf();
        assert!(p.is_dir());
        std::fs::write(p.join("f"), b"x").unwrap();
        drop(td);
        assert!(!p.exists());
    }

    #[test]
    fn distinct_paths() {
        let a = TempDir::new().unwrap();
        let b = TempDir::new().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
