//! Offline shim for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(..)]` and `name in strategy`
//! arguments), range/tuple/`Just` strategies, `prop_map`, `prop_oneof!`,
//! `proptest::collection::{vec, btree_set}`, and the `prop_assert*` macros.
//!
//! Shrinking: on a failing case the runner greedily minimises the input —
//! integer range strategies shrink toward their lower bound, `Vec`
//! strategies shrink by dropping elements and shrinking survivors, tuples
//! shrink componentwise — and reports the minimal counterexample before
//! re-panicking with it. Strategies built with `prop_map`, `prop_oneof!`
//! or `Just` do not shrink (the mapping cannot be inverted), matching the
//! subset this workspace needs.
//!
//! Other differences from the real crate: generation is a pure function of
//! test name and case index (failures replay deterministically), and
//! `prop_assert*` panic instead of returning `TestCaseError`.

use std::ops::Range;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving value production (xorshift64*; quality
/// is ample for test-case generation).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Derives the per-case RNG for `proptest!`-generated tests.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::new(h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values of type `Value`.
///
/// Object-safe: combinators are `Self: Sized` so `Box<dyn Strategy>` works
/// (needed by `prop_oneof!`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, in the order they
    /// should be tried (each strictly "smaller" than `value`, so the
    /// greedy loop in [`shrink_until`] terminates). The default — no
    /// candidates — is correct for any strategy that cannot shrink.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
            /// Shrinks toward the range's lower bound along a geometric
            /// ladder — the bound, then `value - span/2`, `- span/4`, …,
            /// then `value - 1` — so the greedy runner closes in on the
            /// boundary of the failing region from above in O(log span)
            /// accepted steps instead of descending linearly.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out: Vec<$t> = Vec::new();
                if *value > self.start {
                    let span = *value - self.start;
                    let mut push = |cand: $t| {
                        if cand < *value && !out.contains(&cand) {
                            out.push(cand);
                        }
                    };
                    push(self.start);
                    let mut step = span / 2;
                    while step > 0 {
                        push(*value - step);
                        step /= 2;
                    }
                    push(*value - 1);
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        for cand in [self.start, self.start + (*value - self.start) / 2.0] {
            if cand < *value && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
            /// Componentwise: each candidate shrinks one component and
            /// clones the rest.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        /// Shrinks the length first (straight to the minimum, then halves,
        /// then single-element removals), then individual elements via the
        /// element strategy. Candidate counts are bounded so one shrink
        /// round of a huge vector stays cheap.
        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            const REMOVE_CAP: usize = 16;
            const ELEM_CAP: usize = 16;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            let min = self.size.start;
            let n = v.len();
            if n > min {
                out.push(v[..min].to_vec());
                if n / 2 > min {
                    out.push(v[..n / 2].to_vec());
                }
                out.push(v[..n - 1].to_vec());
                for i in 0..n.min(REMOVE_CAP) {
                    let mut shorter = Vec::with_capacity(n - 1);
                    shorter.extend_from_slice(&v[..i]);
                    shorter.extend_from_slice(&v[i + 1..]);
                    out.push(shorter);
                }
            }
            for (i, elem) in v.iter().enumerate().take(ELEM_CAP) {
                for cand in self.element.shrink(elem) {
                    let mut next = v.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` with *up to* `size` elements (duplicates collapse, as in
    /// the real crate when the element domain is small).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Greedily minimises a failing input: repeatedly replaces `current` with
/// the first shrink candidate that still fails, until no candidate fails
/// any more or the trial `budget` is spent. Every accepted candidate is
/// strictly smaller (a [`Strategy::shrink`] contract), so this terminates.
/// The `proptest!` macro runs it on every failure; public so shrinking is
/// testable on its own.
pub fn shrink_until<S: Strategy>(
    strategy: &S,
    mut current: S::Value,
    mut budget: usize,
    mut fails: impl FnMut(&S::Value) -> bool,
) -> S::Value {
    loop {
        let mut improved = false;
        for cand in strategy.shrink(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if fails(&cand) {
                current = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// One shrink/replay trial for the `proptest!` macro: clones the candidate
/// argument tuple and runs the test body on it, catching panics. The
/// `_strategy` parameter only pins `vals` to the strategy's value type so
/// closure inference inside the macro cannot wander.
#[doc(hidden)]
pub fn run_case<S: Strategy, R>(
    _strategy: &S,
    vals: &S::Value,
    body: impl FnOnce(S::Value) -> R,
) -> std::thread::Result<R>
where
    S::Value: Clone,
{
    let cloned = vals.clone();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(cloned)))
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The test-definition macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $( #[test] fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // the argument strategies as one tuple strategy, so the
                // shrinker can minimise all arguments jointly
                let __strat = ($(($strategy),)+);
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    let __vals = $crate::Strategy::generate(&__strat, &mut rng);
                    let __first = $crate::run_case(&__strat, &__vals, |__c| {
                        let ($($arg,)+) = __c;
                        $body
                    });
                    if let Err(first_panic) = __first {
                        const SHRINK_BUDGET: usize = 400;
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic; re-run \
                             reproduces it); shrinking with a budget of {} extra runs...",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            SHRINK_BUDGET,
                        );
                        let __min = $crate::shrink_until(&__strat, __vals, SHRINK_BUDGET, |c| {
                            $crate::run_case(&__strat, c, |__c| {
                                let ($($arg,)+) = __c;
                                $body
                            })
                            .is_err()
                        });
                        eprintln!(
                            "minimal failing input of `{}` ({}): {:#?}",
                            stringify!($name),
                            stringify!($($arg),+),
                            __min,
                        );
                        let __replay = $crate::run_case(&__strat, &__min, |__c| {
                            let ($($arg,)+) = __c;
                            $body
                        });
                        match __replay {
                            Err(p) => ::std::panic::resume_unwind(p),
                            // flaky body: fall back to the original panic
                            Ok(_) => ::std::panic::resume_unwind(first_panic),
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strategy = (1u32..5, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((11..24).contains(&v));
        }
    }

    #[test]
    fn oneof_picks_each_option() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::new(11);
        let seen: std::collections::BTreeSet<u8> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_runnable_tests(
            a in 0u32..10,
            v in crate::collection::vec(0u64..5, 0..6),
        ) {
            prop_assert!(a < 10);
            prop_assert!(v.len() < 6, "len {}", v.len());
        }
    }

    #[test]
    fn integer_shrink_finds_the_failure_boundary() {
        // anything >= 500 "fails": the minimal counterexample is 500 itself
        let min = crate::shrink_until(&(0u64..1000), 937, 1000, |v| *v >= 500);
        assert_eq!(min, 500);
        // failing at the lower bound shrinks all the way down
        let min = crate::shrink_until(&(3u32..100), 97, 1000, |_| true);
        assert_eq!(min, 3);
        // a passing-everywhere predicate keeps the original value
        let min = crate::shrink_until(&(0u64..10), 7, 1000, |_| false);
        assert_eq!(min, 7);
    }

    #[test]
    fn vec_shrink_minimises_length_and_elements() {
        let strat = crate::collection::vec(0u8..200, 0..64);
        let start: Vec<u8> = (0..40u8).map(|i| i + 100).collect();
        // "fails" whenever at least 3 elements are >= 50
        let fails = |v: &Vec<u8>| v.iter().filter(|&&x| x >= 50).count() >= 3;
        let min = crate::shrink_until(&strat, start, 10_000, fails);
        assert_eq!(min.len(), 3, "length must shrink to the minimum that still fails");
        assert!(min.iter().all(|&x| x == 50), "elements must shrink to the boundary, got {min:?}");
    }

    #[test]
    fn vec_shrink_respects_the_minimum_length() {
        let strat = crate::collection::vec(0u8..10, 2..64);
        for cand in Strategy::shrink(&strat, &vec![1u8; 10]) {
            assert!(cand.len() >= 2, "candidate {cand:?} under the size floor");
        }
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        let strat = (0u32..100, 0u32..100);
        let min = crate::shrink_until(&strat, (60, 70), 2000, |(a, b)| a + b >= 50);
        assert_eq!(min, (0, 50), "first component shrinks out, second stops at the boundary");
    }

    #[test]
    fn unshrinkable_strategies_yield_no_candidates() {
        assert!(Strategy::shrink(&Just(9u8), &9).is_empty());
        let mapped = (0u8..10).prop_map(|x| x * 2);
        assert!(Strategy::shrink(&mapped, &4).is_empty());
        let one = prop_oneof![Just(1u8), Just(2)];
        assert!(Strategy::shrink(&one, &1).is_empty());
    }
}
