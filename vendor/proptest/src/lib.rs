//! Offline shim for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(..)]` and `name in strategy`
//! arguments), range/tuple/`Just` strategies, `prop_map`, `prop_oneof!`,
//! `proptest::collection::{vec, btree_set}`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking — a failing case panics
//! with the case number so it can be replayed deterministically (generation
//! is a pure function of test name and case index) — and `prop_assert*`
//! panic instead of returning `TestCaseError`.

use std::ops::Range;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving value production (xorshift64*; quality
/// is ample for test-case generation).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Derives the per-case RNG for `proptest!`-generated tests.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::new(h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values of type `Value`.
///
/// Object-safe: combinators are `Self: Sized` so `Box<dyn Strategy>` works
/// (needed by `prop_oneof!`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` with *up to* `size` elements (duplicates collapse, as in
    /// the real crate when the element domain is small).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The test-definition macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $( #[test] fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let run = move || $body;
                    if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic; re-run reproduces it)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strategy = (1u32..5, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((11..24).contains(&v));
        }
    }

    #[test]
    fn oneof_picks_each_option() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::new(11);
        let seen: std::collections::BTreeSet<u8> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_runnable_tests(
            a in 0u32..10,
            v in crate::collection::vec(0u64..5, 0..6),
        ) {
            prop_assert!(a < 10);
            prop_assert!(v.len() < 6, "len {}", v.len());
        }
    }
}
