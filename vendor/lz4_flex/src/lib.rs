//! Offline shim for the `lz4_flex` crate: a safe, dependency-free
//! implementation of the LZ4 *block* format (the real crate's
//! `lz4_flex::block` module), exposing only what the DFOGraph workspace
//! uses: [`compress`], [`decompress`] and [`get_maximum_output_size`].
//!
//! The encoder is a greedy single-pass matcher over a 4-byte hash table —
//! the same shape as the reference LZ4 fast path. It honours the block
//! format's end-of-block rules (the last five bytes are always literals and
//! no match starts within twelve bytes of the end), so output decodes with
//! any conforming LZ4 block decoder. The decoder validates every length and
//! offset and never panics on malformed input; memory use is bounded by the
//! caller-provided uncompressed size.

/// Minimum match length the block format can express.
const MINMATCH: usize = 4;
/// No match may *start* closer than this to the end of the input.
const MFLIMIT: usize = 12;
/// The last sequence is literals-only and at least this long.
const LASTLITERALS: usize = 5;
/// Matches reference at most this far back (2-byte offset).
const MAX_OFFSET: usize = 65535;
/// log2 of the hash table size; 16 KiB of table for 64 KiB+ blocks.
const HASH_BITS: u32 = 12;

/// Decoding failure: the input is not a valid LZ4 block for the stated
/// uncompressed size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompressError {
    /// Input ended inside a token, length extension, literal run or offset.
    Truncated,
    /// A match offset is zero or reaches before the start of the output.
    OffsetOutOfBounds,
    /// Decoded output does not match the expected uncompressed size.
    UncompressedSizeMismatch { expected: usize, actual: usize },
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "LZ4 block truncated"),
            DecompressError::OffsetOutOfBounds => write!(f, "LZ4 match offset out of bounds"),
            DecompressError::UncompressedSizeMismatch { expected, actual } => {
                write!(f, "LZ4 block decoded to {actual} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Worst-case compressed size of `len` input bytes (all-literal output:
/// one token plus one extension byte per 255 literals, plus slack).
pub const fn get_maximum_output_size(len: usize) -> usize {
    len + len / 255 + 16
}

#[inline]
fn hash(v: u32) -> usize {
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32(input: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([input[i], input[i + 1], input[i + 2], input[i + 3]])
}

/// Appends an LSIC length extension (`255` bytes then the remainder).
fn push_length_extension(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

/// Emits one sequence: `literals`, then a match of `match_len` bytes at
/// `offset` back. `match_len` is the *full* length (≥ [`MINMATCH`]).
fn push_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    let lit_len = literals.len();
    let ml = match_len - MINMATCH;
    let token = ((lit_len.min(15) as u8) << 4) | ml.min(15) as u8;
    out.push(token);
    if lit_len >= 15 {
        push_length_extension(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if ml >= 15 {
        push_length_extension(out, ml - 15);
    }
}

/// Emits the final literals-only sequence (no offset follows the token).
fn push_trailing_literals(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_len = literals.len();
    out.push((lit_len.min(15) as u8) << 4);
    if lit_len >= 15 {
        push_length_extension(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
}

/// Compresses `input` into a standalone LZ4 block.
///
/// The output never exceeds [`get_maximum_output_size`]`(input.len())`;
/// whether it *beats* `input.len()` is the caller's framing decision (this
/// shim's user stores incompressible blocks raw).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(get_maximum_output_size(input.len()));
    if input.len() < MFLIMIT {
        push_trailing_literals(&mut out, input);
        return out;
    }
    // positions stored +1 so 0 means "empty slot"
    let mut table = vec![0u32; 1 << HASH_BITS];
    let match_end_limit = input.len() - LASTLITERALS;
    let search_limit = input.len() - MFLIMIT;
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i <= search_limit {
        let seq = read_u32(input, i);
        let slot = &mut table[hash(seq)];
        let cand = *slot;
        *slot = (i + 1) as u32;
        if cand != 0 {
            let c = (cand - 1) as usize;
            if i - c <= MAX_OFFSET && read_u32(input, c) == seq {
                let mut mlen = MINMATCH;
                while i + mlen < match_end_limit && input[c + mlen] == input[i + mlen] {
                    mlen += 1;
                }
                push_sequence(&mut out, &input[anchor..i], (i - c) as u16, mlen);
                i += mlen;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    push_trailing_literals(&mut out, &input[anchor..]);
    out
}

/// Reads an LSIC length extension starting at `*i`.
fn read_length_extension(input: &[u8], i: &mut usize) -> Result<usize, DecompressError> {
    let mut v = 0usize;
    loop {
        let b = *input.get(*i).ok_or(DecompressError::Truncated)?;
        *i += 1;
        v += b as usize;
        if b != 255 {
            return Ok(v);
        }
    }
}

/// Decompresses a standalone LZ4 block of known uncompressed size.
///
/// Strict: the block must decode to *exactly* `uncompressed_size` bytes
/// (the framing this shim serves stores the exact size next to each block),
/// and memory use is bounded by that size even for malformed input.
pub fn decompress(input: &[u8], uncompressed_size: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out: Vec<u8> = Vec::with_capacity(uncompressed_size);
    let mut i = 0usize;
    if input.is_empty() {
        if uncompressed_size == 0 {
            return Ok(out);
        }
        return Err(DecompressError::Truncated);
    }
    loop {
        let token = *input.get(i).ok_or(DecompressError::Truncated)?;
        i += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_length_extension(input, &mut i)?;
        }
        if out.len() + lit_len > uncompressed_size {
            return Err(DecompressError::UncompressedSizeMismatch {
                expected: uncompressed_size,
                actual: out.len() + lit_len,
            });
        }
        let lit_end = i.checked_add(lit_len).ok_or(DecompressError::Truncated)?;
        if lit_end > input.len() {
            return Err(DecompressError::Truncated);
        }
        out.extend_from_slice(&input[i..lit_end]);
        i = lit_end;
        if i == input.len() {
            break; // final literals-only sequence
        }
        if i + 2 > input.len() {
            return Err(DecompressError::Truncated);
        }
        let offset = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
        i += 2;
        if offset == 0 || offset > out.len() {
            return Err(DecompressError::OffsetOutOfBounds);
        }
        let mut mlen = (token & 0x0f) as usize;
        if mlen == 15 {
            mlen += read_length_extension(input, &mut i)?;
        }
        mlen += MINMATCH;
        if out.len() + mlen > uncompressed_size {
            return Err(DecompressError::UncompressedSizeMismatch {
                expected: uncompressed_size,
                actual: out.len() + mlen,
            });
        }
        // overlapping copy: byte-at-a-time is the format's semantics
        let start = out.len() - offset;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != uncompressed_size {
        return Err(DecompressError::UncompressedSizeMismatch {
            expected: uncompressed_size,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let enc = compress(data);
        assert!(enc.len() <= get_maximum_output_size(data.len()), "bound violated");
        decompress(&enc, data.len()).expect("roundtrip decode")
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for data in [&b""[..], b"a", b"hello", b"hellohello!"] {
            assert_eq!(roundtrip(data), data);
        }
    }

    #[test]
    fn repetitive_input_compresses() {
        let data: Vec<u8> =
            std::iter::repeat_n(b"dfograph-chunk-", 500).flat_map(|s| s.iter().copied()).collect();
        let enc = compress(&data);
        assert!(enc.len() < data.len() / 4, "{} vs {}", enc.len(), data.len());
        assert_eq!(decompress(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn zeros_compress_hard() {
        let data = vec![0u8; 100_000];
        let enc = compress(&data);
        assert!(enc.len() < 1000);
        assert_eq!(decompress(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn pseudorandom_input_roundtrips() {
        // xorshift noise: essentially incompressible, exercises the
        // all-literal path with long length extensions
        let mut x = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..70_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn structured_u32_arrays_roundtrip() {
        // the shape of chunk payloads: small integers in little-endian u32s
        let data: Vec<u8> = (0..20_000u32).flat_map(|v| (v % 977).to_le_bytes()).collect();
        let enc = compress(&data);
        assert!(enc.len() < data.len());
        assert_eq!(decompress(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        let mut data = b"ab".to_vec();
        data.extend(std::iter::repeat_n(b'a', 5000));
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_input_errors() {
        let data: Vec<u8> =
            std::iter::repeat_n(b"abcdefg0", 200).flat_map(|s| s.iter().copied()).collect();
        let enc = compress(&data);
        for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
            assert!(
                decompress(&enc[..cut], data.len()).is_err(),
                "cut at {cut} of {} must fail",
                enc.len()
            );
        }
    }

    #[test]
    fn wrong_size_errors() {
        let data = vec![7u8; 4096];
        let enc = compress(&data);
        assert!(decompress(&enc, data.len() - 1).is_err());
        assert!(decompress(&enc, data.len() + 1).is_err());
    }

    #[test]
    fn bad_offset_errors() {
        // token: 1 literal + match, offset 9 with only 1 byte of history
        let block = [0x10u8, b'x', 9, 0];
        assert_eq!(decompress(&block, 100), Err(DecompressError::OffsetOutOfBounds));
        // zero offset is never valid
        let block = [0x10u8, b'x', 0, 0];
        assert_eq!(decompress(&block, 100), Err(DecompressError::OffsetOutOfBounds));
    }

    #[test]
    fn malformed_length_extension_bounded() {
        // a token demanding a huge literal run must fail without allocating
        // unbounded memory (the expected-size cap trips first)
        let mut block = vec![0xf0u8];
        block.extend(std::iter::repeat_n(255, 64));
        block.push(0);
        assert!(decompress(&block, 1024).is_err());
    }
}
