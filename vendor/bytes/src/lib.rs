//! Offline shim for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable, immutable byte buffer
//! (reference-counted, like the real crate); [`BytesMut`] is a growable
//! buffer that freezes into [`Bytes`]. Only the surface used by the
//! DFOGraph workspace is provided.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer. Clones and slices share the same
/// allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Self { data, start: 0, end }
    }

    /// The real crate borrows static data zero-copy; the shim copies it,
    /// which is semantically identical for this workspace.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them.
    pub fn split_to(&mut self, at: usize) -> Self {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::from(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        debug_bytes(self, f)
    }
}

/// Growable byte buffer freezing into [`Bytes`].
#[derive(Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off and returns the entire contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut { data: std::mem::take(&mut self.data) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        debug_bytes(self, f)
    }
}

fn debug_bytes(bytes: &[u8], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        for e in std::ascii::escape_default(b) {
            write!(f, "{}", e as char)?;
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::copy_from_slice(b"hello world");
        assert_eq!(b.len(), 11);
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        let h = b.slice(..5);
        assert_eq!(&h[..], b"hello");
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::copy_from_slice(b"abcdef");
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
    }

    #[test]
    fn bytes_mut_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"xy");
        m.extend_from_slice(b"z");
        assert_eq!(&m.freeze()[..], b"xyz");
    }
}
