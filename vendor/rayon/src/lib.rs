//! Offline shim for the `rayon` crate — actually parallel.
//!
//! Mirrors the parallel-iterator entry points the workspace uses
//! (`into_par_iter` / `par_iter` / `par_iter_mut`, then `zip`, `enumerate`,
//! `map`, `for_each`, `collect`) and executes the mapped stage on scoped
//! worker threads pulling items off a shared atomic index — the same
//! order-preserving work distribution rayon's order-stable collects
//! guarantee, so results are identical to both rayon and the old
//! sequential shim; only the wall-clock changes.
//!
//! The pool size honors `RAYON_NUM_THREADS` (like the real crate) and
//! defaults to the machine's available parallelism, capped at the item
//! count. Swap in the real crate via `[workspace.dependencies]` for the
//! full adapter zoo.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count: `RAYON_NUM_THREADS` override, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Runs `f` over `items` on scoped worker threads, preserving item order in
/// the result. Falls back to inline execution for trivial inputs.
fn par_run<T: Send, O: Send>(items: Vec<T>, f: &(impl Fn(T) -> O + Sync)) -> Vec<O> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let out: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("each index taken once");
                let o = f(item);
                *out[i].lock().unwrap() = Some(o);
            });
        }
    });
    out.into_iter().map(|m| m.into_inner().unwrap().expect("worker filled slot")).collect()
}

/// A materialized parallel iterator: adapters are eager (cheap index work),
/// the user's function runs in parallel at the `map`/`for_each` stage.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs items positionally, truncating to the shorter side (as `zip`
    /// does everywhere).
    pub fn zip<U, J>(self, other: J) -> ParIter<(T, U)>
    where
        U: Send,
        J: IntoParallelIterator<Item = U>,
    {
        let items = self.items.into_iter().zip(other.into_par_iter().items).collect();
        ParIter { items }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// The parallel stage: `f` runs on the worker pool when the result is
    /// consumed by `collect`/`for_each`.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap { items: self.items, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_run(self.items, &f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// A pending parallel map; consuming it runs the closure on the pool.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    pub fn collect<C: FromIterator<O>>(self) -> C {
        par_run(self.items, &self.f).into_iter().collect()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(O) + Sync,
    {
        let f = self.f;
        par_run(self.items, &|x| g(f(x)));
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
    T: Send,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.collect() }
    }
}

/// `par_iter` on slices and collections.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    T: Send + 'data,
    &'data C: IntoIterator<Item = &'data T>,
    &'data T: Send,
{
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// `par_iter_mut` on slices and collections.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send + 'data;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, T, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    T: Send + 'data,
    &'data mut C: IntoIterator<Item = &'data mut T>,
{
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        ParIter { items: self.into_iter().collect() }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Parallel stand-in for `rayon::join`: `b` runs on a scoped thread while
/// `a` runs inline.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn chains_mirror_std() {
        let v = vec![10, 20, 30];
        let disks = [1u64, 2, 3];
        let out: Vec<(usize, (i32, &u64))> =
            v.into_par_iter().zip(disks.par_iter()).enumerate().collect();
        assert_eq!(out, vec![(0, (10, &1)), (1, (20, &2)), (2, (30, &3))]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, vec![2, 4, 6]);
    }

    #[test]
    fn map_collect_preserves_order() {
        let got: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * x).collect();
        let want: Vec<usize> = (0..1000usize).map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_actually_runs_on_multiple_threads() {
        if super::current_num_threads() < 2 {
            return; // single-core machine: nothing to assert
        }
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(2));
                in_flight.fetch_sub(1, Ordering::SeqCst);
            })
            .collect();
        assert!(
            ids.into_inner().unwrap().len() > 1,
            "work stayed on one thread — the shim regressed to sequential"
        );
        assert!(peak.load(Ordering::SeqCst) > 1, "no two items ever ran concurrently");
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
