//! Offline shim for the `rayon` crate.
//!
//! Maps the parallel-iterator entry points onto ordinary sequential
//! iterators: `into_par_iter`/`par_iter`/`par_iter_mut` return the std
//! iterator for the same data, so every downstream adapter (`zip`, `map`,
//! `enumerate`, `collect`, …) is the std one. Results are identical to
//! rayon's (rayon guarantees order-preserving collects); only the
//! parallelism is lost, which is acceptable for the workspace's test-scale
//! preprocessing. Swap in the real crate via `[workspace.dependencies]` to
//! regain it.

/// By-value conversion into a (sequential) "parallel" iterator.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

/// `par_iter` / `par_iter_mut` on slices and collections.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator<Item = &'data T>,
{
    type Item = &'data T;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator<Item = &'data mut T>,
{
    type Item = &'data mut T;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chains_mirror_std() {
        let v = vec![10, 20, 30];
        let disks = [1u64, 2, 3];
        let out: Vec<(usize, (i32, &u64))> =
            v.into_par_iter().zip(disks.par_iter()).enumerate().collect();
        assert_eq!(out, vec![(0, (10, &1)), (1, (20, &2)), (2, (30, &3))]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, vec![2, 4, 6]);
    }
}
