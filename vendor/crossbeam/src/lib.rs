//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, Sender, Receiver}` with cloneable
//! endpoints (the property the DFOGraph network layer relies on that
//! `std::sync::mpsc` lacks on the receiving side), built on a mutex-guarded
//! ring buffer with two condition variables.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        cap: usize,
        state: Mutex<State<T>>,
        not_full: Condvar,
        not_empty: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back, as with crossbeam.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates a bounded channel with capacity `cap` (≥ 1 slot is always
    /// available so `cap == 0` rendezvous is approximated by capacity 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            cap: cap.max(1),
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Blocks while the buffer is full; fails once all receivers have
        /// been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.chan.cap {
                    st.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks while the buffer is empty; fails once all senders have
        /// been dropped and the buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = st.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn bounded_blocks_then_drains() {
            let (tx, rx) = bounded(2);
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
            t.join().unwrap();
        }
    }
}
