//! Offline shim of the `criterion` benchmark harness.
//!
//! Implements exactly the API surface the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a deliberately
//! simple measurement model: one warm-up run, then `sample_size` timed
//! samples, reporting min/mean/max on stdout. No plotting, no statistics,
//! no filesystem output; CI only ever compiles or smoke-runs these targets,
//! and the serious byte-level regression gating lives in the `bench_gate`
//! tool, not in wall-clock numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation in every mode; the variants exist so call sites match
/// the real crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Two-part benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Entry point handed to each bench function by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group; the name prefixes every benchmark line.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size: 10 }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (the real crate enforces a
    /// minimum of 10; the shim honours whatever is asked).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher { elapsed: Duration::ZERO };
    // warm-up: one un-timed run (also surfaces panics before timing starts)
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        times.push(b.elapsed);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / samples as u32;
    let full = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("bench {full:<48} [{min:>10.2?} {mean:>10.2?} {max:>10.2?}] x{samples}");
}

/// Passed to the bench closure; accumulates the time spent inside the
/// routine (setup in `iter_batched` is excluded, as in the real crate).
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        let out = routine();
        self.elapsed += t0.elapsed();
        drop(out);
    }

    /// Times `routine` over a fresh `setup()` value; setup is un-timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        let out = routine(input);
        self.elapsed += t0.elapsed();
        drop(out);
    }
}

/// Prevents the optimizer from discarding a value (re-export shape of the
/// real crate; workspace benches use `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Defines `main()` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 4, "one warm-up + three samples");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        assert!(setups >= 2);
    }

    #[test]
    fn benchmark_id_formats_two_parts() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
