#!/usr/bin/env bash
# Bench-regression gate over the BENCH_*.json trajectory.
#
# Runs the JSON-emitting benches (micro_chunkcache -> BENCH_3,
# micro_compress -> BENCH_4), extracts their one-line JSON payloads into
# target/bench-gate/, and compares each against the committed baseline at
# the repo root with the `bench_gate` binary: any byte metric more than 5 %
# above baseline hard-fails; wall-clock drift only warns (CI timing is
# noise). The benches themselves also carry hard asserts (cache reuse,
# compression wins, bit-identical results), so a broken subsystem fails
# before the comparison does.
#
# Usage:
#   tools/bench_gate.sh            # gate against committed baselines
#   tools/bench_gate.sh --update   # rewrite the committed baselines
set -euo pipefail
cd "$(dirname "$0")/.."

out=target/bench-gate
mkdir -p "$out"

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
fi

run_bench() { # <marker> <bench-target>
  local marker=$1 bench=$2
  echo "== $bench =="
  cargo bench -q -p dfo-bench --bench "$bench" | tee "$out/$bench.log"
  # `|| true`: under pipefail a missing marker must reach the diagnostic
  # below, not kill the script with grep's bare exit 1
  { grep -E "^$marker \{" "$out/$bench.log" || true; } \
    | sed "s/^$marker //" > "$out/$marker.json"
  if [ ! -s "$out/$marker.json" ]; then
    echo "bench_gate.sh: $bench did not emit a $marker JSON line" >&2
    exit 2
  fi
}

run_bench BENCH_3 micro_chunkcache
run_bench BENCH_4 micro_compress

# wall-time percentile readout (warn-only, never gates: CI clock is noise)
echo "== wall-time percentiles (warn-only) =="
grep -h "wall percentiles" "$out"/*.log || echo "  (none emitted)"

status=0
for marker in BENCH_3 BENCH_4; do
  if [ "$update" -eq 1 ]; then
    cp "$out/$marker.json" "$marker.json"
    echo "baseline $marker.json updated from this run"
    echo "  note: restore the hand-written metadata keys (workload," \
         "metric_note, recorded) and pretty-printing before committing"
  elif [ ! -f "$marker.json" ]; then
    # a vanished baseline must fail the gate, not silently disable it
    echo "bench_gate.sh: committed baseline $marker.json is missing" >&2
    echo "  (run tools/bench_gate.sh --update and commit it)" >&2
    status=1
  else
    cargo run -q -p dfo-bench --bin bench_gate -- "$marker.json" "$out/$marker.json" || status=1
  fi
done

exit $status
