//! Multi-process PageRank over localhost TCP: the headline "distributed"
//! in DFOGraph made real.
//!
//! The parent process preprocesses a graph, runs PageRank on the in-process
//! simulated cluster as the reference, then re-executes itself as `P` child
//! processes — one OS process per rank, meshed over `127.0.0.1` TCP via
//! `Cluster::run_distributed` — and verifies the two deployments agree to
//! 1e-9 per vertex. Children are configured the `mpirun` way: `DFO_RANK`
//! picks the rank, `DFO_PEERS` carries the rank address list.
//!
//! ```sh
//! cargo run --release --example distributed_pagerank
//! ```

use dfograph::core::Cluster;
use dfograph::graph::gen::{rmat, GenConfig};
use dfograph::types::{DfoError, EngineConfig, Result};
use std::net::TcpListener;
use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

const RANKS: usize = 2;
const ITERS: usize = 5;

fn config() -> EngineConfig {
    let mut cfg = EngineConfig::for_test(RANKS);
    cfg.batch_policy = dfograph::types::BatchPolicy::FixedVertices(128);
    cfg.connect_timeout_secs = 60;
    cfg
}

fn main() -> Result<()> {
    // the same binary is both launcher and worker; DFO_RANK picks the role
    match EngineConfig::env_rank() {
        Some(rank) => worker(rank),
        None => launcher(),
    }
}

/// One rank of the TCP mesh: joins, runs PageRank, writes its slice.
fn worker(rank: usize) -> Result<()> {
    let base = std::env::var("DFO_BASE").expect("launcher sets DFO_BASE");
    let mut cfg = config();
    cfg.apply_env_overrides(); // DFO_PEERS → TCP transport
    let cluster = Cluster::create(cfg, &base)?;
    let slice = cluster.run_distributed(rank, |ctx| {
        let pr = dfograph::algos::pagerank(ctx, ITERS)?;
        dfograph::algos::read_local(ctx, &pr)
    })?;
    let bytes: Vec<u8> = slice.iter().flat_map(|v| v.to_le_bytes()).collect();
    std::fs::write(Path::new(&base).join(format!("dist_pr_r{rank}.bin")), bytes)
        .map_err(|e| DfoError::io("writing rank slice", e))?;
    println!("rank {rank}: {} vertices done over TCP", slice.len());
    Ok(())
}

fn launcher() -> Result<()> {
    let graph = rmat(GenConfig::new(11, 8, 7));
    println!("graph: {} vertices, {} edges", graph.n_vertices, graph.n_edges());

    let dir = std::env::temp_dir().join("dfograph-distributed-pagerank");
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = Cluster::create(config(), &dir)?;
    cluster.preprocess(&graph)?;

    // reference: the identical program over the in-process channel backend
    let reference: Vec<Vec<f64>> = cluster.run(|ctx| {
        let pr = dfograph::algos::pagerank(ctx, ITERS)?;
        dfograph::algos::read_local(ctx, &pr)
    })?;

    // grab P free localhost ports and fork one worker process per rank
    let listeners: Vec<TcpListener> =
        (0..RANKS).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    let peers: Vec<String> =
        listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect();
    drop(listeners);
    let peer_list = peers.join(",");
    println!("forking {RANKS} worker processes on {peer_list}");

    // every worker records a flight-recorder timeline; rank 0 gathers the
    // peers' spans over the mesh and writes one merged Chrome trace
    let trace_path = dir.join("dist.trace.json");
    let exe = std::env::current_exe().map_err(|e| DfoError::io("locating own binary", e))?;
    let mut children: Vec<_> = (0..RANKS)
        .map(|rank| {
            Command::new(&exe)
                .env("DFO_RANK", rank.to_string())
                .env("DFO_PEERS", &peer_list)
                .env("DFO_BASE", &dir)
                .env("DFO_TRACE", &trace_path)
                .spawn()
                .expect("spawning worker")
        })
        .collect();

    // deadline so a transport bug fails the example instead of wedging CI
    let deadline = Instant::now() + Duration::from_secs(180);
    for (rank, child) in children.iter_mut().enumerate() {
        loop {
            match child.try_wait().expect("try_wait") {
                Some(st) if st.success() => break,
                Some(st) => {
                    return Err(DfoError::NetClosed(format!("worker {rank} failed: {st:?}")))
                }
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    return Err(DfoError::NetClosed(format!("worker {rank} hung")));
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    // the acceptance check: per-vertex agreement to 1e-9
    let mut checked = 0usize;
    let mut max_dev = 0f64;
    for (rank, want) in reference.iter().enumerate() {
        let bytes = std::fs::read(dir.join(format!("dist_pr_r{rank}.bin")))
            .map_err(|e| DfoError::io("reading rank slice", e))?;
        assert_eq!(bytes.len(), want.len() * 8, "rank {rank} slice length");
        for (v, w) in want.iter().enumerate() {
            let got = f64::from_le_bytes(bytes[v * 8..v * 8 + 8].try_into().unwrap());
            let dev = (got - w).abs();
            max_dev = max_dev.max(dev);
            assert!(dev <= 1e-9, "vertex {v} of rank {rank}: tcp {got} vs in-process {w}");
            checked += 1;
        }
    }
    println!("TCP and in-process PageRank agree on all {checked} vertices (max |Δ| = {max_dev:e})");

    // the merged timeline must carry all four pipeline phases for every
    // rank — load target/dist.trace.json into Perfetto to browse it
    let text = std::fs::read_to_string(&trace_path)
        .map_err(|e| DfoError::io("reading merged trace", e))?;
    let events = dfograph::obs::parse_trace(&text)?;
    for rank in 0..RANKS as u64 {
        for phase in ["phase1_generate", "phase2_pass", "phase3_dispatch", "phase4_process"] {
            assert!(
                events.iter().any(|e| e.pid == rank && e.name == phase),
                "merged trace is missing {phase} for rank {rank}"
            );
        }
    }
    println!(
        "merged trace: {} spans across {RANKS} ranks at {}",
        events.len(),
        trace_path.display()
    );
    if let Ok(keep) = std::env::var("DFO_TRACE_OUT") {
        std::fs::copy(&trace_path, &keep).map_err(|e| DfoError::io("copying trace", e))?;
        println!("trace copied to {keep}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
