//! Weakly connected components on a web-crawl-like graph: find the isolated
//! "islands" of a crawl across a 3-node cluster.
//!
//! ```sh
//! cargo run --release --example wcc_communities
//! ```

use dfograph::core::Cluster;
use dfograph::graph::gen::web_chain;
use dfograph::graph::{Edge, EdgeList};
use dfograph::types::EngineConfig;
use std::collections::HashMap;

fn main() -> dfograph::types::Result<()> {
    // three disconnected crawls of different sizes
    let mut edges = Vec::new();
    let mut offset = 0u64;
    for (comms, size) in [(30u64, 32u64), (10, 64), (5, 16)] {
        let part = web_chain(comms, size, 3, 2, comms);
        edges.extend(part.edges.iter().map(|e| Edge::new(e.src + offset, e.dst + offset, ())));
        offset += part.n_vertices;
    }
    let crawl = EdgeList::new(offset, edges);
    println!("crawl: {} pages, {} links", crawl.n_vertices, crawl.n_edges());

    // WCC needs label flow both ways: symmetrize (paper footnote 4)
    let sym = dfograph::algos::wcc::symmetrize(&crawl);

    let dir = std::env::temp_dir().join("dfograph-wcc");
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = Cluster::create(EngineConfig::for_test(3), &dir)?;
    cluster.preprocess(&sym)?;

    let labels: Vec<u64> = cluster
        .run(|ctx| {
            let label = dfograph::algos::wcc(ctx)?;
            dfograph::algos::read_local(ctx, &label)
        })?
        .into_iter()
        .flatten()
        .collect();

    let mut sizes: HashMap<u64, u64> = HashMap::new();
    for l in &labels {
        *sizes.entry(*l).or_insert(0) += 1;
    }
    let mut by_size: Vec<(u64, u64)> = sizes.into_iter().collect();
    by_size.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("found {} components:", by_size.len());
    for (label, n) in by_size.iter().take(5) {
        println!("  component rooted at page {label}: {n} pages");
    }
    assert_eq!(by_size.len(), 3, "three disconnected crawls expected");
    Ok(())
}
