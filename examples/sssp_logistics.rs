//! SSSP on a weighted road-network-like grid — the paper's running example
//! (Figure 2b) on a realistic scenario: shortest delivery routes from a
//! depot over a 4-node cluster, fully out of core.
//!
//! ```sh
//! cargo run --release --example sssp_logistics
//! ```

use dfograph::core::Cluster;
use dfograph::graph::gen::grid2d;
use dfograph::types::{BatchPolicy, EngineConfig};

fn main() -> dfograph::types::Result<()> {
    // a 128 x 128 street grid; travel times depend on the street
    let (rows, cols) = (128u64, 128u64);
    let base = grid2d(rows, cols);
    // make it bidirectional (two-way streets) and attach travel times
    let two_way = dfograph::algos::wcc::symmetrize(&base);
    let roads = two_way.map_data(|e| {
        let (a, b) = (e.src.min(e.dst), e.src.max(e.dst));
        1.0 + ((a * 31 + b * 17) % 10) as f32 // 1..10 minutes per segment
    });
    println!("road network: {} junctions, {} directed segments", roads.n_vertices, roads.n_edges());

    let dir = std::env::temp_dir().join("dfograph-sssp");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = EngineConfig::for_test(4);
    cfg.batch_policy = BatchPolicy::FixedVertices(512);
    let cluster = Cluster::create(cfg, &dir)?;
    cluster.preprocess(&roads)?;

    let depot = 0u64; // top-left corner
    let results = cluster.run(|ctx| {
        let dist = dfograph::algos::sssp(ctx, depot)?;
        let local = dfograph::algos::read_local(ctx, &dist)?;
        let reachable = local.iter().filter(|d| d.is_finite()).count();
        let max = local.iter().filter(|d| d.is_finite()).fold(0f32, |a, &b| a.max(b));
        Ok((reachable, max))
    })?;

    let total_reachable: usize = results.iter().map(|(r, _)| r).sum();
    let worst = results.iter().map(|(_, m)| *m).fold(0f32, f32::max);
    println!("depot at junction {depot}:");
    println!("  reachable junctions: {total_reachable} / {}", rows * cols);
    println!("  farthest delivery time: {worst:.1} minutes");
    assert_eq!(total_reachable as u64, rows * cols, "grid is fully connected");
    Ok(())
}
