//! Quickstart: build a 2-node cluster, preprocess a small power-law graph,
//! and run five PageRank iterations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dfograph::core::Cluster;
use dfograph::graph::gen::{rmat, GenConfig};
use dfograph::types::EngineConfig;

fn main() -> dfograph::types::Result<()> {
    // 1. a synthetic social graph: 2^12 vertices, average degree 16
    let graph = rmat(GenConfig::new(12, 16, 42));
    println!("graph: {} vertices, {} edges", graph.n_vertices, graph.n_edges());

    // 2. a 2-node simulated cluster in a temp directory
    let dir = std::env::temp_dir().join("dfograph-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = EngineConfig::for_test(2);
    let cluster = Cluster::create(cfg, &dir)?;

    // 3. preprocessing: two-level column-oriented partitioning, CSR/DCSR
    //    chunks, dispatch graphs, filter lists (paper §2.2, §4)
    let plan = cluster.preprocess(&graph)?;
    for (i, r) in plan.partitions.iter().enumerate() {
        println!("node {i}: vertices [{}, {}), {} batches", r.start, r.end, plan.n_batches(i));
    }

    // 4. run PageRank SPMD on every node
    let top = cluster.run(|ctx| {
        let rank = dfograph::algos::pagerank(ctx, 5)?;
        let local = dfograph::algos::read_local(ctx, &rank)?;
        // each node reports its local top vertex
        let start = ctx.plan().partitions[ctx.rank()].start;
        let (best, score) = local
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, s)| (start + i as u64, *s))
            .unwrap();
        Ok((best, score))
    })?;

    println!("\nper-node top PageRank vertices after 5 iterations:");
    for (node, (v, score)) in top.iter().enumerate() {
        println!("  node {node}: vertex {v} with rank {score:.6}");
    }
    println!(
        "\ntotal disk traffic: {} bytes, network: {} bytes",
        cluster.total_disk_bytes(),
        cluster.total_net_sent()
    );
    Ok(())
}
