//! Checkpointing and recovery (paper §3.2): a node dies mid-computation;
//! the rerun resumes from the last committed checkpoint instead of from
//! scratch.
//!
//! The crash is injected with the deterministic fault hook
//! (`EngineConfig::crash_schedule`, env-settable as
//! `DFO_CRASH_AT=<call>[.pre|.mid][:<rank>][@<epoch>][,...]`):
//! node 1 dies right *before* a chosen `Process` call commits, so the kill
//! lands at a precise commit boundary instead of relying on timing. The
//! recovery run reopens the arrays (recovering their last committed
//! checkpoint), agrees on the globally committed round via
//! `NodeCtx::committed_round`, and re-executes from there — losing at most
//! one `Process` call.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use dfograph::core::Cluster;
use dfograph::graph::gen::{rmat, GenConfig};
use dfograph::types::{BatchPolicy, CrashPoint, EngineConfig};

const ROUNDS: u64 = 6;
const CRASH_BEFORE: u64 = 4;

fn config() -> EngineConfig {
    let mut cfg = EngineConfig::for_test(2);
    cfg.checkpointing = true;
    cfg.checkpoints_kept = 2;
    cfg.batch_policy = BatchPolicy::FixedVertices(64);
    cfg
}

fn run(cluster: &Cluster) -> dfograph::types::Result<Vec<u64>> {
    cluster.run(|ctx| {
        let acc = ctx.vertex_array::<u64>("acc")?;
        let round = ctx.vertex_array::<u64>("round")?;
        // the global resume point: the last round committed on every node
        let resume_at = ctx.committed_round("round")?;
        if resume_at > 0 && ctx.rank() == 0 {
            println!("  [node 0] recovered checkpoint: resuming at round {resume_at}");
        }
        for it in resume_at..ROUNDS {
            // idempotent round body (set, not increment), with the round
            // marker written in the same call as the data so both commit
            // at one boundary
            let (a, r) = (acc.clone(), round.clone());
            ctx.process_vertices(&["acc", "round"], None, move |v, c| {
                c.set(&a, v, (v + 1) * (it + 1));
                c.set(&r, v, it + 1);
                0u64
            })?;
        }
        let h = acc.clone();
        ctx.process_vertices(&["acc"], None, move |v, c| c.get(&h, v).min(v + 999_999))
    })
}

fn main() -> dfograph::types::Result<()> {
    let graph = rmat(GenConfig::new(10, 8, 3));
    let dir = std::env::temp_dir().join("dfograph-ft");
    let _ = std::fs::remove_dir_all(&dir);

    // first attempt: node 1 dies right before round CRASH_BEFORE commits.
    // Call numbering on a fresh run: call 0 is the committed_round scan,
    // call 1 + it is round `it` — so the hook targets call CRASH_BEFORE + 1.
    let mut crash_cfg = config();
    crash_cfg.crash_schedule =
        vec![CrashPoint { rank: Some(1), ..CrashPoint::at(CRASH_BEFORE + 1) }];
    let crashing = Cluster::create(crash_cfg, &dir)?;
    crashing.preprocess(&graph)?;

    println!("first attempt ({ROUNDS} rounds, crash before round {CRASH_BEFORE} commits):");
    match run(&crashing) {
        Err(e) => println!("  run failed as expected: {e}"),
        Ok(_) => unreachable!("crash was injected"),
    }

    // second attempt: same disks, no crash hook — recovery
    println!("\nsecond attempt (recovery):");
    let recovering = Cluster::create(config(), &dir)?;
    let sums = run(&recovering)?;
    println!("  final per-node checksums: {sums:?}");
    println!("\nrecovered and completed: at most one Process call was lost (paper §3.2).");
    Ok(())
}
