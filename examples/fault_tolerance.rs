//! Checkpointing and recovery (paper §3.2): a node dies mid-computation;
//! the rerun resumes from the last committed checkpoint instead of from
//! scratch.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use dfograph::core::Cluster;
use dfograph::graph::gen::{rmat, GenConfig};
use dfograph::types::{BatchPolicy, EngineConfig};
use std::sync::atomic::{AtomicU64, Ordering};

const ROUNDS: u64 = 6;
const CRASH_BEFORE: u64 = 4;

fn run(cluster: &Cluster, crash: bool) -> dfograph::types::Result<Vec<u64>> {
    cluster.run(|ctx| {
        let acc = ctx.vertex_array::<u64>("acc")?;
        let round = ctx.vertex_array::<u64>("round")?;
        // agree on the globally committed round (min across nodes)
        let local_round = {
            let h = round.clone();
            let min = AtomicU64::new(u64::MAX);
            ctx.process_vertices(&["round"], None, |_v, c| {
                min.fetch_min(c.get(&h, _v), Ordering::Relaxed);
                0u64
            })?;
            let m = min.load(Ordering::Relaxed);
            if m == u64::MAX {
                0
            } else {
                m
            }
        };
        let resume_at = ctx.net().allreduce_min_u64(local_round);
        if resume_at > 0 && ctx.rank() == 0 {
            println!("  [node 0] recovered checkpoint: resuming at round {resume_at}");
        }
        for it in resume_at..ROUNDS {
            if crash && it == CRASH_BEFORE && ctx.rank() == 1 {
                println!("  [node 1] simulating crash before round {it} commits!");
                panic!("injected node failure");
            }
            let (a, r) = (acc.clone(), round.clone());
            ctx.process_vertices(&["acc", "round"], None, move |v, c| {
                c.set(&a, v, (v + 1) * (it + 1));
                c.set(&r, v, it + 1);
                0u64
            })?;
        }
        let h = acc.clone();
        ctx.process_vertices(&["acc"], None, move |v, c| c.get(&h, v).min(v + 999_999))
    })
}

fn main() -> dfograph::types::Result<()> {
    let graph = rmat(GenConfig::new(10, 8, 3));
    let dir = std::env::temp_dir().join("dfograph-ft");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = EngineConfig::for_test(2);
    cfg.checkpointing = true;
    cfg.checkpoints_kept = 2;
    cfg.batch_policy = BatchPolicy::FixedVertices(64);
    let cluster = Cluster::create(cfg, &dir)?;
    cluster.preprocess(&graph)?;

    println!("first attempt ({} rounds, crash injected):", ROUNDS);
    match run(&cluster, true) {
        Err(e) => println!("  run failed as expected: {e}"),
        Ok(_) => unreachable!("crash was injected"),
    }

    println!("\nsecond attempt (recovery):");
    let sums = run(&cluster, false)?;
    println!("  final per-node checksums: {sums:?}");
    println!("\nrecovered and completed: at most one Process call was lost (paper §3.2).");
    Ok(())
}
