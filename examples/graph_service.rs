//! Service mode: a resident engine with a graph catalog, concurrent jobs,
//! admission control, and cooperative cancellation.
//!
//! Loads one R-MAT graph into the catalog (preprocessing happens once),
//! submits three analytics jobs that run concurrently over the shared
//! preprocessed chunks and chunk caches, demonstrates cancelling a
//! long-running job mid-flight, then scrapes the service's own metrics
//! endpoint over plain TCP and checks the expected families are there.
//!
//! ```sh
//! cargo run --release --example graph_service
//! ```
//!
//! Set `DFO_SCRAPE_OUT=<path>` to also write the scraped Prometheus body
//! to a file (CI greps it for metric families).

use dfograph::graph::gen::{rmat, GenConfig};
use dfograph::types::{DfoError, EngineConfig};
use dfograph::{JobSpec, Service};
use std::io::{Read, Write};

fn main() -> dfograph::types::Result<()> {
    // 1. a resident service: one engine per rank, rooted in a temp dir,
    //    with the scrape endpoint on an ephemeral local port
    let dir = std::env::temp_dir().join("dfograph-service");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = EngineConfig::for_test(2);
    cfg.chunk_cache_bytes = 8 << 20;
    cfg.prefetch_depth = 2;
    cfg.metrics_addr = Some("127.0.0.1:0".into());
    let svc = Service::new(cfg, &dir)?;

    // 2. catalog: preprocess once, run many jobs. 2^12 vertices, avg deg 16.
    let graph = rmat(GenConfig::new(12, 16, 42));
    let entry = svc.load_graph("social", &graph)?;
    println!(
        "catalog: loaded {:?} ({} vertices, {} edges)",
        entry.name(),
        entry.plan().n_vertices,
        graph.n_edges()
    );

    // 3. three concurrent jobs over the same catalog graph — they share the
    //    preprocessed chunks and per-rank chunk caches, and each report
    //    attributes cache hits/misses to its own lookups
    let jobs = [
        svc.submit(JobSpec::new("social", "pagerank").with_param("iters", 5))?,
        svc.submit(JobSpec::new("social", "bfs").with_param("root", 0))?,
        svc.submit(JobSpec::new("social", "degree"))?,
    ];
    let (running, queued) = svc.job_counts();
    println!("submitted 3 jobs: {running} running, {queued} queued\n");
    for job in jobs {
        let report = job.wait()?;
        let n_values: usize = report.outputs.iter().map(|o| o.len()).sum();
        println!(
            "job {} ({:>8}): {:>5} values over {} ranks, {} cache hits / {} misses, {:.1?}",
            report.id,
            report.algorithm,
            n_values,
            report.outputs.len(),
            report.totals.chunk_cache_hits,
            report.totals.chunk_cache_misses,
            report.elapsed
        );
    }

    // 4. cooperative cancellation: a job nobody wants to wait 10k iterations
    //    for. Every rank observes the token at its next Process-call
    //    boundary, they agree collectively, and the job unwinds together —
    //    freeing its admission budget for queued work.
    let hog = svc.submit(JobSpec::new("social", "pagerank").with_param("iters", 10_000))?;
    hog.cancel();
    match hog.wait() {
        Err(DfoError::Cancelled(_)) => println!("\nlong job cancelled cooperatively"),
        other => {
            return Err(DfoError::Config(format!(
                "expected the cancelled job to report Cancelled, got {other:?}"
            )))
        }
    }

    let (running, queued) = svc.job_counts();
    assert_eq!((running, queued), (0, 0), "all budget freed");
    println!("service drained: {running} running, {queued} queued");

    // 5. scrape our own metrics endpoint — plain TCP, no HTTP client
    //    needed. The body is Prometheus text exposition: phase-time
    //    histograms per rank, per-job cache counters, disk/net byte totals.
    let addr = svc.metrics_addr().expect("metrics endpoint configured above");
    let body = scrape(addr)?;
    for family in [
        "dfo_phase_seconds",
        "dfo_job_cache_hits_total",
        "dfo_jobs_completed_total",
        "dfo_disk_read_bytes_total",
        "dfo_net_sent_bytes_total",
    ] {
        if !body.contains(family) {
            return Err(DfoError::Config(format!("scrape is missing metric family {family}")));
        }
    }
    println!("\nscraped http://{addr}/metrics: {} bytes, sample lines:", body.len());
    for line in body.lines().filter(|l| l.starts_with("dfo_jobs_")) {
        println!("  {line}");
    }
    if let Ok(path) = std::env::var("DFO_SCRAPE_OUT") {
        std::fs::write(&path, &body).map_err(|e| DfoError::io("writing scrape output", e))?;
        println!("scrape body written to {path}");
    }
    Ok(())
}

/// One `GET /metrics` over a raw [`std::net::TcpStream`], returning the
/// response body.
fn scrape(addr: std::net::SocketAddr) -> dfograph::types::Result<String> {
    let mut s = std::net::TcpStream::connect(addr)
        .map_err(|e| DfoError::io("connecting to metrics endpoint", e))?;
    write!(s, "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .map_err(|e| DfoError::io("sending scrape request", e))?;
    let mut response = String::new();
    s.read_to_string(&mut response).map_err(|e| DfoError::io("reading scrape response", e))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| DfoError::Config("malformed scrape response".into()))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(DfoError::Config(format!("scrape failed: {head}")));
    }
    Ok(body.to_string())
}
