//! Remote job submission against a resident daemon mesh: the service API
//! over real processes and real TCP.
//!
//! The parent preprocesses a graph into `<base>/graphs/web`, then
//! re-executes itself as one [`Daemon`] process per rank (the `mpirun`
//! way: `DFO_RANK` picks the rank, `DFO_PEERS` carries the mesh address
//! list, `DFO_CONTROL_ADDR` is rank 0's client listener). The daemons pay
//! mesh bootstrap **once**; the parent then connects a [`DfoClient`] and
//! pushes a burst of jobs through the resident mesh — mixed priorities,
//! one cancellation — and finally scrapes the scheduler metrics and shuts
//! the mesh down cleanly.
//!
//! ```sh
//! cargo run --release --example remote_jobs
//! ```

use dfograph::core::Cluster;
use dfograph::graph::gen::{rmat, GenConfig};
use dfograph::types::{DfoError, EngineConfig, Result};
use dfograph::{Daemon, DfoClient, JobSpec};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::Command;
use std::time::{Duration, Instant};

const RANKS: usize = 2;

fn config() -> EngineConfig {
    let mut cfg = EngineConfig::for_test(RANKS);
    cfg.batch_policy = dfograph::types::BatchPolicy::FixedVertices(128);
    cfg.connect_timeout_secs = 60;
    cfg
}

fn main() -> Result<()> {
    // the same binary is both launcher and daemon; DFO_RANK picks the role
    match EngineConfig::env_rank() {
        Some(rank) => daemon(rank),
        None => launcher(),
    }
}

/// One resident daemon rank: joins the mesh once, serves jobs until the
/// client asks the mesh to shut down.
fn daemon(rank: usize) -> Result<()> {
    let base = std::env::var("DFO_BASE").expect("launcher sets DFO_BASE");
    let mut cfg = config();
    cfg.apply_env_overrides(); // DFO_PEERS, DFO_CONTROL_ADDR, DFO_METRICS_ADDR
    Daemon::run(cfg, rank, base)
}

fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
    listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect()
}

fn launcher() -> Result<()> {
    let graph = rmat(GenConfig::new(11, 8, 7));
    println!("graph: {} vertices, {} edges", graph.n_vertices, graph.n_edges());

    // preprocess once, where the daemons will discover it
    let dir = std::env::temp_dir().join("dfograph-remote-jobs");
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = Cluster::create(config(), dir.join("graphs").join("web"))?;
    cluster.preprocess(&graph)?;
    drop(cluster);

    let peers = free_addrs(RANKS).join(",");
    let ctrl = free_addrs(1).remove(0);
    let metrics = free_addrs(1).remove(0);
    println!("forking {RANKS} daemon processes on {peers}; control listener {ctrl}");
    let exe = std::env::current_exe().map_err(|e| DfoError::io("locating own binary", e))?;
    let mut daemons: Vec<_> = (0..RANKS)
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.env("DFO_RANK", rank.to_string()).env("DFO_PEERS", &peers).env("DFO_BASE", &dir);
            if rank == 0 {
                cmd.env("DFO_CONTROL_ADDR", &ctrl).env("DFO_METRICS_ADDR", &metrics);
            }
            cmd.spawn().expect("spawning daemon")
        })
        .collect();

    // the daemon binds its listener after the mesh handshake; retry briefly
    let client = {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match DfoClient::connect_as(&ctrl, "example") {
                Ok(c) => break c,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    };
    println!("connected: daemon mesh spans {} ranks", client.nodes());

    // a burst of jobs through the resident mesh — no re-bootstrap between
    // them: background WCC, two PageRanks where the later, higher-priority
    // one overtakes, and a cancelled straggler
    let wcc = client.submit(JobSpec::new("web", "wcc"))?;
    let low = client.submit(JobSpec::new("web", "pagerank").with_param("iters", 5))?;
    let high =
        client.submit(JobSpec::new("web", "pagerank").with_param("iters", 5).with_priority(5))?;
    let doomed = client.submit(JobSpec::new("web", "degree"))?;
    doomed.cancel()?;

    let report = high.wait()?;
    println!(
        "high-priority pagerank: {} ranks, {:?}, {} messages",
        report.outputs.len(),
        report.elapsed,
        report.totals.messages_generated
    );
    let report = low.wait()?;
    println!("low-priority pagerank: done after the high-priority one ({:?})", report.elapsed);
    let report = wcc.wait()?;
    println!("wcc: {} output slices", report.outputs.len());
    match doomed.wait() {
        Err(DfoError::Cancelled(_)) => println!("cancelled job resolved as Cancelled, mesh intact"),
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // every tracked job, with the daemon's charged admission estimates —
    // repeat (algorithm, graph) pairs show learned estimates, not the
    // static hint
    for s in client.list_jobs()? {
        println!(
            "  job {}: {} on {} prio {} est {}B → {:?}",
            s.id, s.algorithm, s.graph, s.priority, s.mem_estimate, s.phase
        );
    }

    // scrape the scheduler metrics off the daemon's endpoint
    let mut sock = TcpStream::connect(&metrics).map_err(|e| DfoError::io("metrics connect", e))?;
    sock.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {metrics}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| DfoError::io("metrics request", e))?;
    let mut body = String::new();
    sock.read_to_string(&mut body).map_err(|e| DfoError::io("metrics read", e))?;
    for family in ["dfo_sched_admitted_total", "dfo_sched_queue_depth", "dfo_jobs_completed_total"]
    {
        assert!(body.contains(family), "scrape missing {family}");
    }
    println!("scheduler metrics live on {metrics}");
    if let Ok(out) = std::env::var("DFO_SCRAPE_OUT") {
        let text = body.split("\r\n\r\n").nth(1).unwrap_or(&body);
        std::fs::write(&out, text).map_err(|e| DfoError::io("writing scrape", e))?;
        println!("scrape written to {out}");
    }

    // clean shutdown: queued work drained, every rank exits 0
    client.shutdown()?;
    let deadline = Instant::now() + Duration::from_secs(60);
    for (rank, child) in daemons.iter_mut().enumerate() {
        loop {
            match child.try_wait().expect("try_wait") {
                Some(st) if st.success() => break,
                Some(st) => {
                    return Err(DfoError::NetClosed(format!("daemon {rank} failed: {st:?}")))
                }
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    return Err(DfoError::NetClosed(format!("daemon {rank} hung on shutdown")));
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        println!("daemon rank {rank} exited cleanly");
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
