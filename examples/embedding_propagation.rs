//! Vector vertex data: GNN-style feature propagation over a social graph.
//!
//! The paper's introduction argues fully-out-of-core processing matters
//! precisely because ML workloads attach *vectors* to vertices ("vertex
//! data may be comparable to or even more extensive than edge data",
//! §1.1). Here every user carries a 16-float embedding (64 B — 8× the edge
//! record), smoothed over the follow graph.
//!
//! ```sh
//! cargo run --release --example embedding_propagation
//! ```

use dfograph::algos::embedding::{seed_embedding, DIM};
use dfograph::core::Cluster;
use dfograph::graph::gen::{rmat, GenConfig};
use dfograph::types::{BatchPolicy, EngineConfig};

fn main() -> dfograph::types::Result<()> {
    let social = rmat(GenConfig::new(12, 16, 7));
    println!(
        "social graph: {} users, {} follows; vertex data {} B/user vs 0 B/edge",
        social.n_vertices,
        social.n_edges(),
        DIM * 4
    );

    let dir = std::env::temp_dir().join("dfograph-embed");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = EngineConfig::for_test(2);
    // fully-out-of-core sizing: batches bounded by memory over the widest
    // array (the embedding)
    cfg.batch_policy = BatchPolicy::FullyOutOfCore { widest_vertex_bytes: (DIM * 4) as u64 };
    cfg.mem_budget = 4 << 20;
    let cluster = Cluster::create(cfg, &dir)?;
    cluster.preprocess(&social)?;

    let drift: Vec<f32> = cluster.run(|ctx| {
        let emb = dfograph::algos::embedding_propagation(ctx, 4, 0.6)?;
        let local = dfograph::algos::read_local(ctx, &emb)?;
        // how far embeddings moved from their seeds = how much structure
        // the propagation injected
        let start = ctx.plan().partitions[ctx.rank()].start;
        let mut total = 0.0f32;
        for (i, e) in local.iter().enumerate() {
            let seed = seed_embedding(start + i as u64);
            total += e.iter().zip(seed.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        }
        Ok(total / local.len().max(1) as f32)
    })?;

    for (node, d) in drift.iter().enumerate() {
        println!("node {node}: mean embedding drift after 4 rounds = {d:.4}");
    }
    assert!(drift.iter().all(|d| *d > 0.0), "propagation must move embeddings");
    Ok(())
}
