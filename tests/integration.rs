//! Cross-crate integration: the full pipeline (generate → preprocess →
//! engine → algorithms) against the independently implemented baseline
//! engines, plus end-to-end I/O accounting invariants.

use dfograph::baselines::{bfs_spec, pagerank_rounds, spec::out_degrees, BaselineCluster};
use dfograph::core::Cluster;
use dfograph::graph::gen::{rmat, web_chain, GenConfig};
use dfograph::types::{BatchPolicy, EngineConfig};
use tempfile::TempDir;

#[test]
fn four_engines_one_answer() {
    let g = rmat(GenConfig::new(9, 6, 1234));
    let td = TempDir::new().unwrap();

    // DFOGraph
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(64);
    let cluster = Cluster::create(cfg, td.path().join("dfo")).unwrap();
    cluster.preprocess(&g).unwrap();
    let dfo: Vec<u32> = cluster
        .run(|ctx| {
            let level = dfograph::algos::bfs(ctx, 0)?;
            dfograph::algos::read_local(ctx, &level)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();

    // GridGraph-like
    let disk = dfograph::storage::NodeDisk::new(td.path().join("gg"), None, false).unwrap();
    let gg = dfograph::baselines::GridGraphEngine::preprocess(disk, &g, 4).unwrap();
    let (grid, _) = gg.run_push(&bfs_spec(0)).unwrap();

    // FlashGraph-like
    let disk = dfograph::storage::NodeDisk::new(td.path().join("fg"), None, false).unwrap();
    let fg = dfograph::baselines::FlashGraphEngine::preprocess(disk, &g, 1 << 30).unwrap();
    let (flash, _) = fg.run_push(&bfs_spec(0)).unwrap();

    // Gemini-like
    let bc = BaselineCluster::create(2, td.path().join("gm"), None, None, false).unwrap();
    let gm = dfograph::baselines::GeminiEngine::load(bc, &g, 1 << 30).unwrap();
    let (gem, _) = gm.run_push(&bfs_spec(0), |a, b| a.min(b)).unwrap();
    let gem: Vec<u32> = gem.into_iter().flatten().collect();

    let oracle = dfograph::algos::bfs::bfs_oracle(&g, 0);
    assert_eq!(dfo, oracle);
    assert_eq!(grid, oracle);
    assert_eq!(flash, oracle);
    assert_eq!(gem, oracle);
}

#[test]
fn traffic_accounting_is_conserved() {
    // every byte one endpoint sends must be received by its peer
    let g = rmat(GenConfig::new(9, 8, 5));
    let td = TempDir::new().unwrap();
    let cfg = EngineConfig::for_test(3);
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    cluster
        .run(|ctx| {
            dfograph::algos::pagerank(ctx, 2)?;
            Ok(0u64)
        })
        .unwrap();
    let stats = cluster.net_stats();
    let sent: u64 = stats.iter().map(|s| s.sent_bytes.get()).sum();
    let recv: u64 = stats.iter().map(|s| s.recv_bytes.get()).sum();
    assert_eq!(sent, recv, "wire bytes must be conserved");
    assert!(sent > 0, "a 3-node PageRank must communicate");
}

#[test]
fn selective_scheduling_reduces_io_on_sparse_frontier() {
    // a long-diameter graph; compare disk traffic of one dense iteration
    // (all vertices) vs one sparse iteration (single frontier vertex)
    let g = web_chain(100, 64, 4, 2, 9);
    let td = TempDir::new().unwrap();
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(64);
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();
    let (dense, sparse) = cluster
        .run(|ctx| {
            let active = ctx.vertex_array::<bool>("active")?;
            let run_iter = |ctx: &mut dfograph::core::NodeCtx| {
                let before = ctx.disk().stats().total_bytes();
                ctx.process_edges(
                    &[],
                    &[],
                    Some(&active),
                    |_v, _c| Some(1u8),
                    |_m: u8, _s, _d, _e: &(), _c| 1u64,
                )?;
                Ok::<u64, dfograph::types::DfoError>(ctx.disk().stats().total_bytes() - before)
            };
            // dense
            let a = active.clone();
            ctx.process_vertices(&["active"], None, move |v, c| {
                c.set(&a, v, true);
                0u64
            })?;
            let dense = run_iter(ctx)?;
            // sparse: one vertex
            let a = active.clone();
            ctx.process_vertices(&["active"], None, move |v, c| {
                c.set(&a, v, v == 0);
                0u64
            })?;
            let sparse = run_iter(ctx)?;
            Ok((dense, sparse))
        })
        .unwrap()
        .into_iter()
        .fold((0, 0), |(d, s), (a, b)| (d + a, s + b));
    assert!(sparse * 3 < dense, "sparse frontier must touch far less disk: {sparse} vs {dense}");
}

#[test]
fn preprocessing_is_deterministic() {
    let g = rmat(GenConfig::new(8, 6, 33));
    let td = TempDir::new().unwrap();
    let mk = |sub: &str| {
        let mut cfg = EngineConfig::for_test(2);
        cfg.batch_policy = BatchPolicy::FixedVertices(32);
        let c = Cluster::create(cfg, td.path().join(sub)).unwrap();
        c.preprocess(&g).unwrap()
    };
    let p1 = mk("a");
    let p2 = mk("b");
    assert_eq!(p1.partitions, p2.partitions);
    assert_eq!(p1.node_meta, p2.node_meta);
}

#[test]
fn pagerank_shape_matches_across_engine_and_baselines() {
    let g = rmat(GenConfig::new(8, 8, 2024));
    let deg = out_degrees(&g);
    let td = TempDir::new().unwrap();

    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(64);
    let cluster = Cluster::create(cfg, td.path().join("dfo")).unwrap();
    cluster.preprocess(&g).unwrap();
    let dfo: Vec<f64> = cluster
        .run(|ctx| {
            let r = dfograph::algos::pagerank(ctx, 4)?;
            dfograph::algos::read_local(ctx, &r)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();

    let bc = BaselineCluster::create(2, td.path().join("ch"), None, None, false).unwrap();
    let chaos = dfograph::baselines::ChaosEngine::preprocess(bc, &g).unwrap();
    let ch: Vec<f64> =
        chaos.pagerank(&pagerank_rounds(4), &deg).unwrap().into_iter().flatten().collect();

    for (v, (a, b)) in dfo.iter().zip(&ch).enumerate() {
        assert!((a - b).abs() < 1e-9, "vertex {v}: dfo {a} vs chaos {b}");
    }
}
