//! CI smoke test: the minimal end-to-end path exercised on every push.
//!
//! Asserts (a) the `dfograph` facade re-exports every workspace crate under
//! its documented name, and (b) a 2-node in-process cluster runs PageRank
//! on a tiny R-MAT graph and matches the sequential oracle exactly.

use dfograph::algos::{pagerank, read_local};
use dfograph::core::Cluster;
use dfograph::graph::gen::{rmat, GenConfig};
use dfograph::types::{BatchPolicy, EngineConfig};
use tempfile::TempDir;

/// Every facade module resolves and exposes its crate's public API. Purely
/// a compile-time check, but one that fails loudly if a re-export is
/// dropped or renamed.
#[test]
fn facade_reexports_resolve() {
    let _part: Vec<dfograph::types::VertexRange> =
        dfograph::part::partition_vertices(4, &[1, 1, 1, 1], &[1, 1, 1, 1], 2, 8);
    let _frame_header: u64 = dfograph::net::FRAME_HEADER_BYTES;
    let _throttle = dfograph::storage::Throttle::from_option(None);
    let _spec = dfograph::baselines::bfs_spec(0);
    let _cfg = dfograph::types::EngineConfig::for_test(1);
    let _edge = dfograph::graph::Edge::new(0u64, 1u64, ());
}

#[test]
fn two_node_pagerank_matches_oracle() {
    let g = rmat(GenConfig::new(8, 4, 2021));
    let want = dfograph::algos::pagerank::pagerank_oracle(&g, 3);

    let td = TempDir::new().unwrap();
    let mut cfg = EngineConfig::for_test(2);
    cfg.batch_policy = BatchPolicy::FixedVertices(32);
    let cluster = Cluster::create(cfg, td.path()).unwrap();
    cluster.preprocess(&g).unwrap();

    let got: Vec<f64> = cluster
        .run(|ctx| {
            let rank = pagerank(ctx, 3)?;
            read_local(ctx, &rank)
        })
        .unwrap()
        .into_iter()
        .flatten()
        .collect();

    assert_eq!(got.len(), want.len(), "every vertex must be covered exactly once");
    for (v, (a, b)) in got.iter().zip(&want).enumerate() {
        assert!((a - b).abs() < 1e-9, "vertex {v}: engine {a} vs oracle {b}");
    }
    let total: f64 = got.iter().sum();
    assert!(total > 0.0 && total <= 1.0 + 1e-9, "ranks are probabilities, got sum {total}");
}
