//! Property-based tests (proptest) on the core data structures and on the
//! engine as a whole: for arbitrary graphs and configurations, DFOGraph
//! must agree with brute force.

use dfograph::core::Cluster;
use dfograph::graph::{Edge, EdgeList};
use dfograph::part::csr::{IndexedChunk, MergeCursor};
use dfograph::part::filter::FilterCursor;
use dfograph::types::ids::{find_range, split_into_batches};
use dfograph::types::{BatchPolicy, EngineConfig, VertexRange};
use proptest::prelude::*;

// ---------- CSR/DCSR -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunk_roundtrip_preserves_edges(
        n_src in 1u32..200,
        raw in proptest::collection::vec((0u32..200, 0u32..100, 0u16..50), 0..300),
        ratio in prop_oneof![Just(0.0f64), Just(32.0), Just(1e9)],
    ) {
        let mut edges: Vec<(u32, u32, u16)> =
            raw.into_iter().map(|(s, d, x)| (s % n_src, d, x)).collect();
        edges.sort_unstable_by_key(|(s, d, _)| (*s, *d));
        let chunk = IndexedChunk::build(n_src, &edges, ratio);
        let mut buf = Vec::new();
        chunk.write_to(&mut buf).unwrap();
        let back = IndexedChunk::<u16>::read_from(&mut std::io::Cursor::new(&buf), None).unwrap();
        let got: Vec<(u32, u32, u16)> = back.iter().map(|(s, d, &x)| (s, d, x)).collect();
        prop_assert_eq!(got, edges);
    }

    #[test]
    fn csr_and_dcsr_always_agree(
        n_src in 1u32..128,
        raw in proptest::collection::vec((0u32..128, 0u32..64), 1..200),
    ) {
        let mut edges: Vec<(u32, u32, ())> =
            raw.into_iter().map(|(s, d)| (s % n_src, d, ())).collect();
        edges.sort_unstable_by_key(|(s, d, _)| (*s, *d));
        let chunk = IndexedChunk::build(n_src, &edges, 1e9); // force CSR
        prop_assert!(chunk.has_csr());
        let mut cursor = MergeCursor::new();
        for src in 0..n_src {
            let a = chunk.edges_of_csr(src);
            let b = cursor.edges_of(&chunk, src);
            prop_assert_eq!(&chunk.dst[a.clone()], &chunk.dst[b.clone()], "src {}", src);
        }
    }

    #[test]
    fn filter_cursor_equals_hashset(
        list in proptest::collection::btree_set(0u32..500, 0..100),
        stream in proptest::collection::btree_set(0u32..500, 0..200),
    ) {
        let list: Vec<u32> = list.into_iter().collect();
        let set: std::collections::HashSet<u32> = list.iter().copied().collect();
        let mut cursor = FilterCursor::new(&list);
        for s in stream {
            prop_assert_eq!(cursor.contains(s), set.contains(&s), "src {}", s);
        }
    }

    // ---------- partition geometry ----------------------------------------

    #[test]
    fn batches_tile_the_range(start in 0u64..1000, len in 0u64..1000, bs in 1u64..100) {
        let range = VertexRange::new(start, start + len);
        let batches = split_into_batches(range, bs);
        // contiguous, complete cover
        prop_assert_eq!(batches.first().unwrap().start, range.start);
        prop_assert_eq!(batches.last().unwrap().end, range.end);
        for w in batches.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        for b in &batches {
            prop_assert!(b.len() <= bs);
        }
    }

    #[test]
    fn find_range_locates_every_vertex(
        cuts in proptest::collection::btree_set(1u64..500, 0..6),
        n in 500u64..600,
    ) {
        let mut bounds: Vec<u64> = vec![0];
        bounds.extend(cuts);
        bounds.push(n);
        let ranges: Vec<VertexRange> =
            bounds.windows(2).map(|w| VertexRange::new(w[0], w[1])).collect();
        for v in (0..n).step_by(17) {
            let idx = find_range(&ranges, v);
            prop_assert!(idx.is_some());
            prop_assert!(ranges[idx.unwrap()].contains(v));
        }
        prop_assert_eq!(find_range(&ranges, n), None);
    }

    #[test]
    fn partitioner_covers_exactly(
        degrees in proptest::collection::vec(0u32..50, 1..300),
        p in 1usize..6,
        alpha in 1u64..40,
    ) {
        let n = degrees.len() as u64;
        let parts = dfograph::part::partition_vertices(n, &degrees, &degrees, p, alpha);
        prop_assert_eq!(parts.len(), p);
        prop_assert_eq!(parts[0].start, 0);
        prop_assert_eq!(parts.last().unwrap().end, n);
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }
}

// ---------- whole-engine property -----------------------------------------

fn arb_graph() -> impl Strategy<Value = EdgeList<()>> {
    (2u64..120, proptest::collection::vec((0u64..120, 0u64..120), 0..400)).prop_map(|(n, raw)| {
        let edges: Vec<Edge<()>> =
            raw.into_iter().map(|(s, d)| Edge::new(s % n, d % n, ())).collect();
        EdgeList::new(n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_in_degrees_match_brute_force(
        g in arb_graph(),
        nodes in 1usize..4,
        batch in 1u64..40,
    ) {
        let mut want = vec![0u64; g.n_vertices as usize];
        for e in &g.edges {
            want[e.dst as usize] += 1;
        }
        let td = tempfile::TempDir::new().unwrap();
        let mut cfg = EngineConfig::for_test(nodes);
        cfg.batch_policy = BatchPolicy::FixedVertices(batch);
        let cluster = Cluster::create(cfg, td.path()).unwrap();
        cluster.preprocess(&g).unwrap();
        let got: Vec<u64> = cluster
            .run(|ctx| {
                let deg = ctx.vertex_array::<u64>("deg")?;
                let d = deg.clone();
                ctx.process_edges(
                    &[],
                    &["deg"],
                    None,
                    |_v, _c| Some(1u64),
                    move |m: u64, _s, dst, _e: &(), c| {
                        let cur = c.get(&d, dst);
                        c.set(&d, dst, cur + m);
                        0u64
                    },
                )?;
                dfograph::algos::read_local(ctx, &deg)
            })
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        prop_assert_eq!(got, want);
    }
}
